//! The crash-recoverable sweep service: a scenario matrix executed as a
//! journaled work queue of `(cell, seed)` sub-runs with periodic state
//! snapshots, so a killed sweep resumes where it stopped and still produces
//! a results table **byte-identical** to an uninterrupted run.
//!
//! # Run directory
//!
//! [`run_sweep_service`] owns a directory:
//!
//! * `journal.bin` — append-only journal of checksummed records (frame
//!   format of [`df_engine::Encoder::finish_frame`], magic `DFSWPJNL`). The
//!   first record is a header binding the directory to one matrix (a
//!   fingerprint over every cell's kernel-normalised configuration); each
//!   further record is one completed `(cell, seed)` sub-run with its
//!   measured numbers. A torn tail (the process died mid-append) is
//!   detected by the per-record checksum and ignored.
//! * `cell<c>_s<s>.snap` — the latest mid-run snapshot of an in-progress
//!   sub-run ([`Network::snapshot`]), rewritten every `checkpoint_every`
//!   cycles via a temp-file + rename so it is never torn. Deleted when the
//!   sub-run completes (its journal record supersedes it).
//!
//! # Recovery
//!
//! On restart over the same directory the journal is replayed: completed
//! sub-runs are loaded (not re-run), and every incomplete sub-run restarts —
//! from its snapshot when a valid one exists (validated by magic, version,
//! checksum and configuration fingerprint; an invalid or stale file just
//! means a from-scratch re-run). Because each sub-run is deterministic and
//! snapshot resume is bit-identical, the recovered table equals the
//! uninterrupted one byte for byte.
//!
//! Measured numbers ride through the journal as exact bit patterns (f64
//! bits), never through text, so recovery cannot introduce rounding drift.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use df_engine::{CodecError, Decoder, Encoder};

use crate::config::SimulationConfig;
use crate::experiment::{average_reports, SteadyStateReport};
use crate::network::snapshot::config_fingerprint;
use crate::network::Network;
use crate::sweep::{MatrixCell, ScenarioMatrix};
use crate::telemetry::StreamingTelemetry;

/// Journal frame magic.
pub const JOURNAL_MAGIC: [u8; 8] = *b"DFSWPJNL";
/// Journal format version.
pub const JOURNAL_VERSION: u32 = 1;

const RECORD_HEADER: u8 = 0;
const RECORD_SUBRUN: u8 = 1;

/// Options of the sweep service.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// The run directory (journal + snapshots + results); created if absent.
    pub run_dir: PathBuf,
    /// Cycles between mid-run snapshots of each sub-run (0 = none: recovery
    /// granularity is whole sub-runs).
    pub checkpoint_every: u64,
    /// Worker threads pulling sub-runs off the queue.
    pub threads: usize,
    /// Stream per-window telemetry of every sub-run to stderr with this
    /// window width (None = quiet). Observation only — results are
    /// bit-identical either way.
    pub stream_window: Option<u64>,
    /// Testing/CI hook: stop claiming work after this many sub-runs have
    /// completed in *this* process, as if the service had been killed (the
    /// journal and snapshots stay behind for a resume).
    pub interrupt_after_subruns: Option<usize>,
    /// Testing/CI hook: abandon each sub-run at its first checkpoint at or
    /// after this cycle, leaving the snapshot behind (simulates dying
    /// mid-cell). Requires `checkpoint_every > 0` to have any effect.
    pub interrupt_mid_subrun_at: Option<u64>,
}

impl RunnerOptions {
    /// Defaults over a run directory: checkpoint every 2000 cycles, one
    /// worker, no streaming, no interruption hooks.
    pub fn new(run_dir: impl Into<PathBuf>) -> Self {
        RunnerOptions {
            run_dir: run_dir.into(),
            checkpoint_every: 2_000,
            threads: 1,
            stream_window: None,
            interrupt_after_subruns: None,
            interrupt_mid_subrun_at: None,
        }
    }
}

/// What a service invocation did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// True when every sub-run of the matrix is complete and `cells` holds
    /// the full table; false when an interruption hook stopped the service
    /// early (resume by calling again over the same directory).
    pub complete: bool,
    /// The executed matrix cells in deterministic order (empty unless
    /// `complete`).
    pub cells: Vec<MatrixCell>,
    /// Sub-runs recovered from the journal (completed by an earlier
    /// invocation).
    pub recovered_subruns: usize,
    /// Sub-runs executed by this invocation.
    pub executed_subruns: usize,
    /// Sub-runs this invocation resumed from a mid-run snapshot, with the
    /// cycle each resumed at.
    pub resumed_from_snapshot: Vec<(usize, u64, u64)>,
}

/// The measured (seed-dependent) part of a [`SteadyStateReport`] — what the
/// journal persists. Identification fields (routing, pattern, offered load)
/// are regenerated from the matrix on recovery.
#[derive(Debug, Clone, Copy)]
struct MeasuredNumbers {
    accepted_load: f64,
    avg_packet_latency: f64,
    latency_ci95: f64,
    p99_latency: f64,
    avg_hops: f64,
    global_misroute_fraction: f64,
    local_misroute_fraction: f64,
    delivered_packets: u64,
    dropped_on_fault_packets: u64,
    retargeted_packets: u64,
    injected_packets: u64,
    seed: u64,
}

impl MeasuredNumbers {
    fn of(report: &SteadyStateReport) -> Self {
        MeasuredNumbers {
            accepted_load: report.accepted_load,
            avg_packet_latency: report.avg_packet_latency,
            latency_ci95: report.latency_ci95,
            p99_latency: report.p99_latency,
            avg_hops: report.avg_hops,
            global_misroute_fraction: report.global_misroute_fraction,
            local_misroute_fraction: report.local_misroute_fraction,
            delivered_packets: report.delivered_packets,
            dropped_on_fault_packets: report.dropped_on_fault_packets,
            retargeted_packets: report.retargeted_packets,
            injected_packets: report.injected_packets,
            seed: report.seed,
        }
    }

    fn into_report(self, config: &SimulationConfig) -> SteadyStateReport {
        SteadyStateReport {
            routing: config.routing,
            pattern: config.schedule.phases()[0].pattern,
            offered_load: config.offered_load,
            accepted_load: self.accepted_load,
            avg_packet_latency: self.avg_packet_latency,
            latency_ci95: self.latency_ci95,
            p99_latency: self.p99_latency,
            avg_hops: self.avg_hops,
            global_misroute_fraction: self.global_misroute_fraction,
            local_misroute_fraction: self.local_misroute_fraction,
            delivered_packets: self.delivered_packets,
            dropped_on_fault_packets: self.dropped_on_fault_packets,
            retargeted_packets: self.retargeted_packets,
            injected_packets: self.injected_packets,
            seed: self.seed,
        }
    }

    fn encode(&self, e: &mut Encoder) {
        e.f64(self.accepted_load);
        e.f64(self.avg_packet_latency);
        e.f64(self.latency_ci95);
        e.f64(self.p99_latency);
        e.f64(self.avg_hops);
        e.f64(self.global_misroute_fraction);
        e.f64(self.local_misroute_fraction);
        e.u64(self.delivered_packets);
        e.u64(self.dropped_on_fault_packets);
        e.u64(self.retargeted_packets);
        e.u64(self.injected_packets);
        e.u64(self.seed);
    }

    fn decode(d: &mut Decoder) -> Result<Self, CodecError> {
        Ok(MeasuredNumbers {
            accepted_load: d.f64()?,
            avg_packet_latency: d.f64()?,
            latency_ci95: d.f64()?,
            p99_latency: d.f64()?,
            avg_hops: d.f64()?,
            global_misroute_fraction: d.f64()?,
            local_misroute_fraction: d.f64()?,
            delivered_packets: d.u64()?,
            dropped_on_fault_packets: d.u64()?,
            retargeted_packets: d.u64()?,
            injected_packets: d.u64()?,
            seed: d.u64()?,
        })
    }
}

/// Fingerprint binding a run directory to one matrix: hashes every cell's
/// kernel-normalised configuration fingerprint plus the seeds-per-cell
/// count, in cell order.
pub fn matrix_fingerprint(matrix: &ScenarioMatrix) -> u64 {
    let mut e = Encoder::new();
    e.u64(matrix.seeds_per_cell);
    let cells = matrix.cells();
    e.usize(cells.len());
    for (_, config) in &cells {
        e.u64(config_fingerprint(config));
    }
    df_engine::codec::fnv1a64(&e.into_bytes())
}

fn journal_path(run_dir: &Path) -> PathBuf {
    run_dir.join("journal.bin")
}

fn snapshot_path(run_dir: &Path, cell: usize, seed_idx: u64) -> PathBuf {
    run_dir.join(format!("cell{cell}_s{seed_idx}.snap"))
}

/// Append one framed record and flush it to disk.
fn append_record(file: &Mutex<File>, payload: Encoder) -> Result<(), String> {
    let bytes = payload.finish_frame(JOURNAL_MAGIC, JOURNAL_VERSION);
    let mut file = file.lock().map_err(|_| "journal writer poisoned")?;
    file.write_all(&bytes)
        .and_then(|()| file.sync_data())
        .map_err(|e| format!("journal append failed: {e}"))
}

/// Split a journal file into frames and decode them; stops silently at a
/// torn or corrupt tail (the crash case), erroring only on a malformed
/// prefix.
/// Parsed journal header: `(matrix fingerprint, cell count, seeds per cell)`.
type JournalHeader = (u64, u64, u64);
/// Recovered sub-run results, keyed by `(cell index, seed index)`.
type RecoveredSubruns = HashMap<(usize, u64), MeasuredNumbers>;

fn read_journal(bytes: &[u8]) -> Result<(Option<JournalHeader>, RecoveredSubruns), String> {
    let mut header = None;
    let mut done = HashMap::new();
    let mut off = 0usize;
    while off < bytes.len() {
        // frame = magic(8) version(4) payload_len(8) payload checksum(8)
        let Some(rest) = bytes.get(off..) else { break };
        if rest.len() < 28 {
            break; // torn tail
        }
        let len = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes")) as usize;
        let Some(frame) = rest.get(..28 + len) else {
            break; // torn tail
        };
        let mut d = match Decoder::open_frame(frame, JOURNAL_MAGIC, JOURNAL_VERSION) {
            Ok(d) => d,
            Err(CodecError::ChecksumMismatch { .. }) | Err(CodecError::Truncated { .. }) => break,
            Err(e) => return Err(format!("corrupt journal: {e}")),
        };
        let mut parse = |d: &mut Decoder| -> Result<(), CodecError> {
            match d.u8()? {
                RECORD_HEADER => {
                    header = Some((d.u64()?, d.u64()?, d.u64()?));
                }
                RECORD_SUBRUN => {
                    let cell = d.usize()?;
                    let seed_idx = d.u64()?;
                    let numbers = MeasuredNumbers::decode(d)?;
                    done.insert((cell, seed_idx), numbers);
                }
                tag => {
                    return Err(CodecError::Invalid(format!(
                        "unknown journal record tag {tag}"
                    )))
                }
            }
            Ok(())
        };
        parse(&mut d).map_err(|e| format!("corrupt journal record: {e}"))?;
        off += 28 + len;
    }
    Ok((header, done))
}

/// Write `bytes` to `path` atomically (temp file + rename), fsynced.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_data())
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| format!("cannot commit {}: {e}", path.display()))
}

/// What a sub-run execution ended as.
enum SubRunEnd {
    Finished(SteadyStateReport, Option<u64>),
    /// Abandoned at a checkpoint by `interrupt_mid_subrun_at`.
    Interrupted,
}

/// Execute one `(cell, seed)` sub-run with periodic snapshots, resuming
/// from an existing valid snapshot if the run directory holds one.
/// Reproduces [`SteadyStateExperiment::run`] exactly: warm up, open the
/// window, measure — chunked stepping and snapshot writes never perturb the
/// simulation.
///
/// [`SteadyStateExperiment::run`]: crate::experiment::SteadyStateExperiment::run
fn run_subrun(
    config: &SimulationConfig,
    snap_path: &Path,
    options: &RunnerOptions,
    label: &str,
) -> Result<SubRunEnd, String> {
    let warmup = config.warmup_cycles;
    let total = config.total_cycles();
    let mut resumed_at = None;

    let mut net = match fs::read(snap_path) {
        Ok(bytes) => match Network::restore(config.clone(), &bytes) {
            Ok(net) => {
                resumed_at = Some(net.cycle());
                net
            }
            Err(e) => {
                // stale or damaged checkpoint: discard and start over
                eprintln!(
                    "sweep: discarding unusable snapshot {}: {e}",
                    snap_path.display()
                );
                let _ = fs::remove_file(snap_path);
                Network::new(config.clone())
            }
        },
        Err(_) => Network::new(config.clone()),
    };

    let mut telemetry = options
        .stream_window
        .map(|w| StreamingTelemetry::new(&net, w));

    loop {
        if net.cycle() == warmup && !net.metrics().measuring() {
            let start = net.cycle();
            net.metrics_mut().start_measurement(start);
        }
        if net.cycle() >= total {
            break;
        }
        let next_checkpoint = match options.checkpoint_every {
            0 => u64::MAX,
            every => (net.cycle() / every + 1) * every,
        };
        let next_window = telemetry
            .as_ref()
            .map(|t| {
                let w = t.window_cycles();
                (net.cycle() / w + 1) * w
            })
            .unwrap_or(u64::MAX);
        let phase_end = if net.cycle() < warmup { warmup } else { total };
        let target = next_checkpoint.min(next_window).min(phase_end);
        net.run_cycles(target - net.cycle());

        if let Some(t) = telemetry.as_mut() {
            if net.cycle() == next_window {
                eprintln!("sweep[{label}]: {}", t.close_window(&net).log_line());
            }
        }
        if net.cycle() == next_checkpoint && net.cycle() < total {
            // open the window first if the checkpoint sits exactly on the
            // warm-up boundary, so the snapshot carries the decision
            if net.cycle() == warmup && !net.metrics().measuring() {
                let start = net.cycle();
                net.metrics_mut().start_measurement(start);
            }
            write_atomic(snap_path, &net.snapshot())?;
            if let Some(stop_at) = options.interrupt_mid_subrun_at {
                if net.cycle() >= stop_at {
                    return Ok(SubRunEnd::Interrupted);
                }
            }
        }
    }

    let summary = net.metrics().window_summary();
    let accepted = net
        .metrics()
        .accepted_load(config.topology.num_nodes(), config.measurement_cycles);
    Ok(SubRunEnd::Finished(
        SteadyStateReport {
            routing: config.routing,
            pattern: config.schedule.phases()[0].pattern,
            offered_load: config.offered_load,
            accepted_load: accepted,
            avg_packet_latency: summary.avg_packet_latency,
            latency_ci95: summary.latency_ci95,
            p99_latency: summary.p99_latency,
            avg_hops: summary.avg_hops,
            global_misroute_fraction: summary.global_misroute_fraction,
            local_misroute_fraction: summary.local_misroute_fraction,
            delivered_packets: summary.delivered_packets,
            dropped_on_fault_packets: net.metrics().dropped_on_fault_packets(),
            retargeted_packets: net.metrics().retargeted_packets(),
            injected_packets: net.injected_packets_total(),
            seed: config.seed,
        },
        resumed_at,
    ))
}

/// Run (or resume) a scenario matrix as a crash-recoverable service over
/// `options.run_dir`. See the module documentation for the directory
/// protocol. Returns the full cell table when the matrix completed, or a
/// partial [`SweepOutcome`] when an interruption hook stopped it.
pub fn run_sweep_service(
    matrix: &ScenarioMatrix,
    options: &RunnerOptions,
) -> Result<SweepOutcome, String> {
    if matrix.scenarios.is_empty() || matrix.loads.is_empty() || matrix.routings.is_empty() {
        return Err("a scenario matrix needs at least one scenario, load and routing".into());
    }
    if matrix.seeds_per_cell == 0 {
        return Err("seeds_per_cell must be at least 1".into());
    }
    fs::create_dir_all(&options.run_dir)
        .map_err(|e| format!("cannot create run dir {}: {e}", options.run_dir.display()))?;

    let cells = matrix.cells();
    for (key, config) in &cells {
        config
            .validate()
            .map_err(|e| format!("invalid matrix cell {key:?}: {e}"))?;
    }
    let fingerprint = matrix_fingerprint(matrix);
    let subruns_total = cells.len() * matrix.seeds_per_cell as usize;

    // ---- recover the journal ----
    let journal = journal_path(&options.run_dir);
    let mut recovered = HashMap::new();
    let mut need_header = true;
    if let Ok(bytes) = fs::read(&journal) {
        let (header, done) = read_journal(&bytes)?;
        if let Some((fp, num_cells, seeds)) = header {
            if fp != fingerprint
                || num_cells != cells.len() as u64
                || seeds != matrix.seeds_per_cell
            {
                return Err(format!(
                    "run dir {} belongs to a different matrix (journal fingerprint \
                     {fp:#018x}, this matrix {fingerprint:#018x})",
                    options.run_dir.display()
                ));
            }
            need_header = false;
            recovered = done;
        }
        // a journal whose header record itself was torn is treated as empty
    }
    let journal_file = Mutex::new(
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal)
            .map_err(|e| format!("cannot open journal {}: {e}", journal.display()))?,
    );
    if need_header {
        let mut e = Encoder::new();
        e.u8(RECORD_HEADER);
        e.u64(fingerprint);
        e.u64(cells.len() as u64);
        e.u64(matrix.seeds_per_cell);
        append_record(&journal_file, e)?;
    }

    // ---- build the work queue: every sub-run not in the journal ----
    let mut pending: Vec<(usize, u64)> = Vec::new();
    for cell in 0..cells.len() {
        for seed_idx in 0..matrix.seeds_per_cell {
            if !recovered.contains_key(&(cell, seed_idx)) {
                pending.push((cell, seed_idx));
            }
        }
    }
    let recovered_subruns = recovered.len();

    // ---- execute ----
    let results: Mutex<HashMap<(usize, u64), MeasuredNumbers>> = Mutex::new(recovered);
    let resumed: Mutex<Vec<(usize, u64, u64)>> = Mutex::new(Vec::new());
    let executed = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let first_error: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..options.threads.max(1).min(pending.len().max(1)) {
            scope.spawn(|| loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(cell, seed_idx)) = pending.get(idx) else {
                    break;
                };
                let (key, config) = &cells[cell];
                let mut config = config.clone();
                config.seed += seed_idx; // run_averaged's consecutive seeds
                let snap = snapshot_path(&options.run_dir, cell, seed_idx);
                let label = format!(
                    "{}/{}/{:.2}#{}",
                    key.scenario,
                    key.routing.label(),
                    key.load,
                    seed_idx
                );
                match run_subrun(&config, &snap, options, &label) {
                    Ok(SubRunEnd::Finished(report, resumed_at)) => {
                        let numbers = MeasuredNumbers::of(&report);
                        let mut e = Encoder::new();
                        e.u8(RECORD_SUBRUN);
                        e.usize(cell);
                        e.u64(seed_idx);
                        numbers.encode(&mut e);
                        if let Err(err) = append_record(&journal_file, e) {
                            *first_error.lock().expect("error slot") = Some(err);
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                        let _ = fs::remove_file(&snap);
                        if let Some(at) = resumed_at {
                            resumed
                                .lock()
                                .expect("resume log")
                                .push((cell, seed_idx, at));
                        }
                        results
                            .lock()
                            .expect("result map")
                            .insert((cell, seed_idx), numbers);
                        let done = executed.fetch_add(1, Ordering::SeqCst) + 1;
                        if let Some(limit) = options.interrupt_after_subruns {
                            if done >= limit {
                                stop.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                    Ok(SubRunEnd::Interrupted) => {
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    Err(err) => {
                        *first_error.lock().expect("error slot") = Some(err);
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            });
        }
    });

    if let Some(err) = first_error.into_inner().expect("error slot") {
        return Err(err);
    }

    let results = results.into_inner().expect("result map");
    let executed_subruns = executed.load(Ordering::SeqCst);
    let resumed_from_snapshot = resumed.into_inner().expect("resume log");
    if results.len() < subruns_total {
        return Ok(SweepOutcome {
            complete: false,
            cells: Vec::new(),
            recovered_subruns,
            executed_subruns,
            resumed_from_snapshot,
        });
    }

    // ---- assemble the table in deterministic cell order ----
    let mut out = Vec::with_capacity(cells.len());
    for (cell, (key, config)) in cells.iter().enumerate() {
        let reports: Vec<SteadyStateReport> = (0..matrix.seeds_per_cell)
            .map(|seed_idx| {
                let mut cfg = config.clone();
                cfg.seed += seed_idx;
                results[&(cell, seed_idx)].into_report(&cfg)
            })
            .collect();
        let report = if matrix.seeds_per_cell == 1 {
            reports.into_iter().next().expect("one report")
        } else {
            average_reports(config, &reports)
        };
        out.push(MatrixCell {
            key: key.clone(),
            report,
        });
    }
    Ok(SweepOutcome {
        complete: true,
        cells: out,
        recovered_subruns,
        executed_subruns,
        resumed_from_snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelMode;
    use crate::scenario::Scenario;
    use crate::sweep::{matrix_table, run_matrix};
    use df_model::NetworkConfig;
    use df_routing::RoutingKind;
    use df_topology::DragonflyParams;
    use df_traffic::PatternKind;

    fn small_matrix(seeds_per_cell: u64) -> ScenarioMatrix {
        let base = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Base)
            .pattern(PatternKind::Uniform)
            .warmup_cycles(150)
            .measurement_cycles(350)
            .seed(17)
            .kernel(KernelMode::Optimized)
            .build()
            .expect("valid base configuration");
        ScenarioMatrix {
            base,
            scenarios: vec![
                Scenario::steady(PatternKind::Uniform),
                Scenario::steady(PatternKind::Adversarial { offset: 1 }),
            ],
            loads: vec![0.2, 0.5],
            routings: vec![RoutingKind::Base, RoutingKind::PiggyBacking],
            seeds_per_cell,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("df_runner_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn uninterrupted_service_matches_run_matrix() {
        let matrix = small_matrix(1);
        let dir = tmp_dir("match");
        let outcome = run_sweep_service(&matrix, &RunnerOptions::new(&dir)).expect("runs");
        assert!(outcome.complete);
        assert_eq!(outcome.recovered_subruns, 0);
        assert_eq!(outcome.executed_subruns, matrix.num_cells());

        let reference = run_matrix(&matrix, 2);
        let service = matrix_table("t", &outcome.cells).to_csv();
        let expected = matrix_table("t", &reference).to_csv();
        assert_eq!(service, expected, "service must reproduce run_matrix");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_between_subruns_resumes_to_identical_table() {
        let matrix = small_matrix(1);
        let dir = tmp_dir("kill_between");
        let reference = {
            let ref_dir = tmp_dir("kill_between_ref");
            let out = run_sweep_service(&matrix, &RunnerOptions::new(&ref_dir)).expect("reference");
            let _ = fs::remove_dir_all(&ref_dir);
            matrix_table("t", &out.cells).to_csv()
        };

        let mut opts = RunnerOptions::new(&dir);
        opts.interrupt_after_subruns = Some(3);
        let partial = run_sweep_service(&matrix, &opts).expect("partial run");
        assert!(!partial.complete);
        assert_eq!(partial.executed_subruns, 3);

        let resumed = run_sweep_service(&matrix, &RunnerOptions::new(&dir)).expect("resume");
        assert!(resumed.complete);
        assert_eq!(resumed.recovered_subruns, 3);
        assert_eq!(resumed.executed_subruns, matrix.num_cells() - 3);
        assert_eq!(matrix_table("t", &resumed.cells).to_csv(), reference);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_mid_subrun_resumes_from_snapshot_to_identical_table() {
        let matrix = small_matrix(1);
        let dir = tmp_dir("kill_mid");
        let reference = {
            let ref_dir = tmp_dir("kill_mid_ref");
            let out = run_sweep_service(&matrix, &RunnerOptions::new(&ref_dir)).expect("reference");
            let _ = fs::remove_dir_all(&ref_dir);
            matrix_table("t", &out.cells).to_csv()
        };

        // die mid-cell: checkpoint every 100 cycles, abandon at cycle >= 200
        let mut opts = RunnerOptions::new(&dir);
        opts.checkpoint_every = 100;
        opts.interrupt_mid_subrun_at = Some(200);
        let partial = run_sweep_service(&matrix, &opts).expect("partial run");
        assert!(!partial.complete);
        assert_eq!(partial.executed_subruns, 0);
        assert!(
            fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().ends_with(".snap")),
            "the abandoned sub-run must leave a snapshot behind"
        );

        let mut resume_opts = RunnerOptions::new(&dir);
        resume_opts.checkpoint_every = 100;
        let resumed = run_sweep_service(&matrix, &resume_opts).expect("resume");
        assert!(resumed.complete);
        assert!(
            !resumed.resumed_from_snapshot.is_empty(),
            "at least one sub-run must resume from its snapshot"
        );
        assert!(resumed
            .resumed_from_snapshot
            .iter()
            .all(|&(_, _, cycle)| cycle == 200));
        assert_eq!(matrix_table("t", &resumed.cells).to_csv(), reference);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_dir_of_a_different_matrix_is_rejected() {
        let dir = tmp_dir("mismatch");
        run_sweep_service(&small_matrix(1), &RunnerOptions::new(&dir)).expect("first run");
        let mut other = small_matrix(1);
        other.loads = vec![0.1];
        let err = run_sweep_service(&other, &RunnerOptions::new(&dir)).unwrap_err();
        assert!(err.contains("different matrix"), "got: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_seed_cells_average_like_run_matrix() {
        let mut matrix = small_matrix(2);
        matrix.scenarios.truncate(1);
        matrix.loads.truncate(1);
        let dir = tmp_dir("seeds");
        let outcome = run_sweep_service(&matrix, &RunnerOptions::new(&dir)).expect("runs");
        assert!(outcome.complete);
        let reference = run_matrix(&matrix, 2);
        assert_eq!(
            matrix_table("t", &outcome.cells).to_csv(),
            matrix_table("t", &reference).to_csv()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_ignored() {
        let matrix = small_matrix(1);
        let dir = tmp_dir("torn");
        let mut opts = RunnerOptions::new(&dir);
        opts.interrupt_after_subruns = Some(2);
        run_sweep_service(&matrix, &opts).expect("partial run");
        // tear the last record
        let journal = journal_path(&dir);
        let bytes = fs::read(&journal).unwrap();
        fs::write(&journal, &bytes[..bytes.len() - 5]).unwrap();

        let resumed = run_sweep_service(&matrix, &RunnerOptions::new(&dir)).expect("resume");
        assert!(resumed.complete);
        // the torn record's sub-run was re-run, the intact one recovered
        assert_eq!(resumed.recovered_subruns, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
