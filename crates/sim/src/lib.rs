//! # df-sim — the Dragonfly network simulator and experiment harness
//!
//! A cycle-driven simulator of input-output-buffered Dragonfly routers with
//! credit-based flow control, reproducing the evaluation methodology of
//! *"Contention-based Nonminimal Adaptive Routing in High-radix Networks"*
//! (Fuentes et al., IPDPS 2015):
//!
//! * [`config`] — the [`SimulationConfig`] builder combining topology,
//!   router microarchitecture, routing mechanism and traffic,
//! * [`network`] — the [`Network`] object and its per-cycle step loop,
//! * [`experiment`] — steady-state and transient experiment runners,
//! * [`scenario`] — declarative multi-phase traffic workloads,
//! * [`fault`] — deterministic link/router/node fault injection
//!   ([`fault::FaultPlan`]),
//! * [`churn`] — seeded MTBF/MTTR churn models lowering into fault plans
//!   ([`churn::ChurnModel`]),
//! * [`sweep`] — parallel parameter sweeps and the scenario-matrix runner,
//! * [`runner`] — the crash-recoverable sweep service: journaled cell
//!   completions plus periodic [`network::snapshot`] checkpoints in a run
//!   directory, resumable to a byte-identical results table,
//! * [`task`] — the collective task layer: ranks executing message-gated
//!   communication scripts (all-reduce, all-to-all, barriers) on top of
//!   the packet engine, with application completion time and rank stall
//!   accounting ([`task::TaskEngine`]),
//! * [`telemetry`] — streaming per-window statistics and automatic
//!   steady-state detection ([`StreamingTelemetry`]),
//! * [`metrics`], [`events`], [`node`] — supporting machinery.
//!
//! ```
//! use df_sim::{SimulationConfig, SteadyStateExperiment};
//! use df_model::NetworkConfig;
//! use df_routing::RoutingKind;
//! use df_topology::DragonflyParams;
//! use df_traffic::PatternKind;
//!
//! let config = SimulationConfig::builder()
//!     .topology(DragonflyParams::small())
//!     .network(NetworkConfig::fast_test())
//!     .routing(RoutingKind::Base)
//!     .pattern(PatternKind::Adversarial { offset: 1 })
//!     .offered_load(0.2)
//!     .warmup_cycles(200)
//!     .measurement_cycles(300)
//!     .seed(1)
//!     .build()
//!     .expect("valid configuration");
//! let report = SteadyStateExperiment::new(config).run();
//! assert!(report.delivered_packets > 0);
//! ```

#![warn(missing_docs)]

pub mod churn;
pub mod config;
pub mod events;
pub mod experiment;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod node;
mod parallel;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod task;
pub mod telemetry;

pub use churn::{ChurnModel, ChurnRate};
pub use config::{ConfigError, KernelMode, SimulationConfig, SimulationConfigBuilder};
pub use experiment::{
    average_reports, SteadyStateExperiment, SteadyStateReport, StreamingReport,
    StreamingRunOptions, TransientExperiment, TransientReport,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use metrics::{Metrics, WindowSummary};
pub use network::snapshot::{config_fingerprint, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use network::Network;
pub use runner::{run_sweep_service, RunnerOptions, SweepOutcome};
pub use scenario::{Scenario, ScenarioPhase};
pub use sweep::{
    cell_seed, intra_cell_workers, load_sweep, matrix_table, num_threads, run_matrix,
    run_matrix_budgeted, run_sweep, split_thread_budget, MatrixCell, MatrixKey, ScenarioMatrix,
};
pub use task::{
    run_interference, run_job_set, run_task_workload, InterferenceReport, JobReport, JobSetReport,
    JobsEngine, TaskEngine, TaskReport,
};
pub use telemetry::{StreamingTelemetry, WindowStats};
