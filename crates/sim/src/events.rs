//! The in-flight event queue: packets and credits travelling on links.
//!
//! Links are not modelled as objects; instead, every transfer schedules an
//! event for the cycle at which it completes (tail arrival for packets,
//! credit arrival for flow control). The queue is a binary heap ordered by
//! time with a monotonically increasing sequence number as tie-breaker, which
//! keeps event processing deterministic.

use df_model::{Cycle, Packet, VcId};
use df_topology::{NodeId, Port, RouterId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Something that completes at a future cycle.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet's tail arrives at an input VC of a router.
    PacketArrival {
        /// Destination router.
        router: RouterId,
        /// Input port on that router.
        port: Port,
        /// Input VC on that port.
        vc: VcId,
        /// The packet.
        packet: Packet,
    },
    /// Credits return to an output port of a router (the downstream router
    /// drained a packet).
    CreditReturn {
        /// Router owning the output port.
        router: RouterId,
        /// The output port.
        port: Port,
        /// Downstream VC the credits belong to.
        vc: VcId,
        /// Number of phits freed.
        phits: u32,
    },
    /// A packet is delivered to its destination node.
    Delivery {
        /// The destination node.
        node: NodeId,
        /// The packet.
        packet: Packet,
    },
}

struct Scheduled {
    at: Cycle,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` to complete at cycle `at`.
    pub fn schedule(&mut self, at: Cycle, event: Event) {
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop every event scheduled at or before `now`, in (time, insertion)
    /// order.
    pub fn pop_due(&mut self, now: Cycle) -> Vec<Event> {
        let mut due = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.at > now {
                break;
            }
            due.push(self.heap.pop().expect("peeked").event);
        }
        due
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Earliest pending completion time.
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::PacketId;

    fn credit(router: u32, at_seq: u32) -> Event {
        Event::CreditReturn {
            router: RouterId(router),
            port: Port(at_seq),
            vc: VcId(0),
            phits: 8,
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, credit(3, 0));
        q.schedule(10, credit(1, 1));
        q.schedule(20, credit(2, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_time(), Some(10));
        let due = q.pop_due(25);
        assert_eq!(due.len(), 2);
        match (&due[0], &due[1]) {
            (Event::CreditReturn { router: a, .. }, Event::CreditReturn { router: b, .. }) => {
                assert_eq!(*a, RouterId(1));
                assert_eq!(*b, RouterId(2));
            }
            _ => panic!("unexpected event kinds"),
        }
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(29).is_empty());
        assert_eq!(q.pop_due(30).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(42, credit(i, i));
        }
        let due = q.pop_due(42);
        let order: Vec<u32> = due
            .iter()
            .map(|e| match e {
                Event::CreditReturn { router, .. } => router.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn packet_and_delivery_events_round_trip() {
        let mut q = EventQueue::new();
        let p = Packet::new(PacketId(9), NodeId(0), NodeId(5), 8, 0);
        q.schedule(
            7,
            Event::PacketArrival {
                router: RouterId(1),
                port: Port(2),
                vc: VcId(1),
                packet: p.clone(),
            },
        );
        q.schedule(5, Event::Delivery { node: NodeId(5), packet: p });
        let due = q.pop_due(10);
        assert!(matches!(due[0], Event::Delivery { .. }));
        assert!(matches!(due[1], Event::PacketArrival { .. }));
    }
}
