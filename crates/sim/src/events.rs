//! The in-flight event queue: packets and credits travelling on links.
//!
//! Links are not modelled as objects; instead, every transfer schedules an
//! event for the cycle at which it completes (tail arrival for packets,
//! credit arrival for flow control). Two queue implementations share the same
//! deterministic ordering contract — events complete in `(time, insertion
//! sequence)` order:
//!
//! * [`EventQueue`] — a **time wheel**: a ring of per-cycle buckets sized to
//!   the maximum scheduling horizon (packet serialisation + the longest link
//!   latency), with a small `BTreeMap` overflow for the rare event scheduled
//!   beyond the horizon. Scheduling is O(1), draining a cycle is O(events in
//!   that cycle), and in steady state neither allocates: buckets are
//!   recycled ring slots whose capacity persists, and
//!   [`EventQueue::pop_due_into`] fills a caller-owned scratch buffer. An
//!   empty current bucket is a no-op fast path (one length check).
//! * [`LegacyEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   reference implementation for the `KernelMode::Legacy` baseline and the
//!   determinism cross-checks in `tests/determinism.rs`.
//!
//! The wheel preserves the heap's ordering bit-for-bit: bucket entries are
//! appended in sequence order, and an overflow entry for cycle `t` is always
//! older (smaller sequence) than any bucket entry for `t`, because once `t`
//! enters the horizon every later schedule lands in the bucket — so draining
//! overflow-then-bucket yields exactly `(time, seq)` order.

use df_model::{Cycle, Packet, VcId};
use df_topology::{NodeId, Port, RouterId};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Something that completes at a future cycle.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet's tail arrives at an input VC of a router.
    PacketArrival {
        /// Destination router.
        router: RouterId,
        /// Input port on that router.
        port: Port,
        /// Input VC on that port.
        vc: VcId,
        /// The packet.
        packet: Packet,
    },
    /// Credits return to an output port of a router (the downstream router
    /// drained a packet).
    CreditReturn {
        /// Router owning the output port.
        router: RouterId,
        /// The output port.
        port: Port,
        /// Downstream VC the credits belong to.
        vc: VcId,
        /// Number of phits freed.
        phits: u32,
    },
    /// A packet is delivered to its destination node.
    Delivery {
        /// The destination node.
        node: NodeId,
        /// The packet.
        packet: Packet,
    },
}

/// Default wheel size when no horizon hint is given (covers the Table I
/// 100-cycle global link plus an 8-phit serialisation with room to spare).
const DEFAULT_HORIZON: usize = 256;

/// Time-wheel event queue (the optimized kernel's implementation).
pub struct EventQueue {
    /// Ring of per-cycle buckets; slot `t & mask` holds the events for cycle
    /// `t` whenever `t` lies within the horizon of `now`.
    buckets: Vec<Vec<(u64, Event)>>,
    /// `buckets.len() - 1` (bucket count is a power of two).
    mask: usize,
    /// First cycle not yet drained; all pending bucket events are at cycles
    /// in `[now, now + buckets.len())`.
    now: Cycle,
    /// Far-future events, beyond the wheel horizon.
    overflow: BTreeMap<Cycle, Vec<(u64, Event)>>,
    /// Total pending events (buckets + overflow).
    len: usize,
    /// Monotonic insertion sequence (the deterministic tie-breaker).
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Empty queue with the default horizon.
    pub fn new() -> Self {
        Self::with_horizon(DEFAULT_HORIZON)
    }

    /// Empty queue whose ring covers at least `min_horizon` cycles ahead
    /// (rounded up to a power of two). Events scheduled further out than the
    /// ring covers fall back to the overflow map — correct, just slower.
    pub fn with_horizon(min_horizon: usize) -> Self {
        let size = min_horizon.max(2).next_power_of_two();
        EventQueue {
            buckets: (0..size).map(|_| Vec::new()).collect(),
            mask: size - 1,
            now: 0,
            overflow: BTreeMap::new(),
            len: 0,
            seq: 0,
        }
    }

    /// Number of ring slots (the scheduling horizon in cycles).
    pub fn horizon(&self) -> usize {
        self.buckets.len()
    }

    /// Schedule `event` to complete at cycle `at`.
    ///
    /// Events must not be scheduled in the past; `at` is clamped to the
    /// current drain position so a same-cycle schedule still completes.
    pub fn schedule(&mut self, at: Cycle, event: Event) {
        let at = at.max(self.now);
        let entry = (self.seq, event);
        self.seq += 1;
        self.len += 1;
        if (at - self.now) < self.buckets.len() as Cycle {
            self.buckets[(at as usize) & self.mask].push(entry);
        } else {
            self.overflow.entry(at).or_default().push(entry);
        }
    }

    /// Drain every event scheduled at or before `now` into `out` (cleared
    /// first), in `(time, insertion)` order. When nothing is pending this is
    /// a no-op fast path: one length check, no bucket walk.
    pub fn pop_due_into(&mut self, now: Cycle, out: &mut Vec<Event>) {
        out.clear();
        if now < self.now {
            return;
        }
        if self.len == 0 {
            // Empty-queue fast path: just advance the drain position.
            self.now = now + 1;
            return;
        }
        for t in self.now..=now {
            // Overflow entries for `t` predate every bucket entry for `t`
            // (see the module docs), so they drain first.
            if let Some(first) = self.overflow.first_key_value() {
                if *first.0 == t {
                    let entries = self.overflow.pop_first().expect("checked non-empty").1;
                    self.len -= entries.len();
                    out.extend(entries.into_iter().map(|(_, e)| e));
                }
            }
            let bucket = &mut self.buckets[(t as usize) & self.mask];
            if !bucket.is_empty() {
                self.len -= bucket.len();
                out.extend(bucket.drain(..).map(|(_, e)| e));
            }
        }
        self.now = now + 1;
    }

    /// Pop every event scheduled at or before `now` (allocating convenience
    /// wrapper used by tests; the simulator uses
    /// [`EventQueue::pop_due_into`]).
    pub fn pop_due(&mut self, now: Cycle) -> Vec<Event> {
        let mut out = Vec::new();
        self.pop_due_into(now, &mut out);
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Earliest pending completion time.
    pub fn next_time(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        let horizon = self.buckets.len() as Cycle;
        let in_ring = (self.now..self.now + horizon)
            .find(|t| !self.buckets[(*t as usize) & self.mask].is_empty());
        let in_overflow = self.overflow.keys().next().copied();
        match (in_ring, in_overflow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Every pending event with its completion cycle, in exact drain order
    /// (`(time, insertion sequence)`, overflow before bucket within a cycle —
    /// the order [`EventQueue::pop_due_into`] would produce). Used by the
    /// snapshot subsystem.
    pub fn pending_in_order(&self) -> Vec<(Cycle, Event)> {
        let mut entries: Vec<(Cycle, u64, Event)> = Vec::with_capacity(self.len);
        for (&t, bucket) in &self.overflow {
            for (seq, event) in bucket {
                entries.push((t, *seq, event.clone()));
            }
        }
        let horizon = self.buckets.len() as Cycle;
        for t in self.now..self.now + horizon {
            for (seq, event) in &self.buckets[(t as usize) & self.mask] {
                entries.push((t, *seq, event.clone()));
            }
        }
        entries.sort_by_key(|&(t, seq, _)| (t, seq));
        entries.into_iter().map(|(t, _, e)| (t, e)).collect()
    }

    /// Rebuild a queue positioned at drain cycle `now` holding `events`
    /// (given in drain order, as produced by
    /// [`EventQueue::pending_in_order`]). Fresh insertion sequences `0..`
    /// preserve the relative order, and every restored event predates — in
    /// sequence — anything scheduled afterwards, exactly as in the original
    /// queue.
    pub fn rebuild(
        min_horizon: usize,
        now: Cycle,
        events: impl IntoIterator<Item = (Cycle, Event)>,
    ) -> Self {
        let mut q = Self::with_horizon(min_horizon);
        q.now = now;
        for (at, event) in events {
            q.schedule(at, event);
        }
        q
    }
}

// ---------------------------------------------------------------------
// Legacy binary-heap implementation
// ---------------------------------------------------------------------

struct Scheduled {
    at: Cycle,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap event queue (the `KernelMode::Legacy` baseline).
#[derive(Default)]
pub struct LegacyEventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl LegacyEventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        LegacyEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` to complete at cycle `at`.
    pub fn schedule(&mut self, at: Cycle, event: Event) {
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop every event scheduled at or before `now`, in (time, insertion)
    /// order.
    pub fn pop_due(&mut self, now: Cycle) -> Vec<Event> {
        let mut due = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.at > now {
                break;
            }
            due.push(self.heap.pop().expect("peeked").event);
        }
        due
    }

    /// Drain into a caller buffer (same contract as
    /// [`EventQueue::pop_due_into`], but the heap pops still reallocate
    /// internally — that is the point of the baseline).
    pub fn pop_due_into(&mut self, now: Cycle, out: &mut Vec<Event>) {
        out.clear();
        out.extend(self.pop_due(now));
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Earliest pending completion time.
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.at)
    }

    /// Every pending event with its completion cycle, in exact drain order
    /// (non-destructive equivalent of popping everything). Used by the
    /// snapshot subsystem.
    pub fn pending_in_order(&self) -> Vec<(Cycle, Event)> {
        let mut entries: Vec<(Cycle, u64, Event)> = self
            .heap
            .iter()
            .map(|s| (s.at, s.seq, s.event.clone()))
            .collect();
        entries.sort_by_key(|&(at, seq, _)| (at, seq));
        entries.into_iter().map(|(at, _, e)| (at, e)).collect()
    }

    /// Rebuild a queue holding `events` (given in drain order, as produced
    /// by [`LegacyEventQueue::pending_in_order`]); fresh sequence numbers
    /// preserve the relative order.
    pub fn rebuild(events: impl IntoIterator<Item = (Cycle, Event)>) -> Self {
        let mut q = Self::new();
        for (at, event) in events {
            q.schedule(at, event);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::PacketId;

    fn credit(router: u32, at_seq: u32) -> Event {
        Event::CreditReturn {
            router: RouterId(router),
            port: Port(at_seq),
            vc: VcId(0),
            phits: 8,
        }
    }

    fn routers_of(events: &[Event]) -> Vec<u32> {
        events
            .iter()
            .map(|e| match e {
                Event::CreditReturn { router, .. } => router.0,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, credit(3, 0));
        q.schedule(10, credit(1, 1));
        q.schedule(20, credit(2, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_time(), Some(10));
        let due = q.pop_due(25);
        assert_eq!(due.len(), 2);
        assert_eq!(routers_of(&due), vec![1, 2]);
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(29).is_empty());
        assert_eq!(q.pop_due(30).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(42, credit(i, i));
        }
        let due = q.pop_due(42);
        assert_eq!(routers_of(&due), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn packet_and_delivery_events_round_trip() {
        let mut q = EventQueue::new();
        let p = Packet::new(PacketId(9), NodeId(0), NodeId(5), 8, 0);
        q.schedule(
            7,
            Event::PacketArrival {
                router: RouterId(1),
                port: Port(2),
                vc: VcId(1),
                packet: p.clone(),
            },
        );
        q.schedule(
            5,
            Event::Delivery {
                node: NodeId(5),
                packet: p,
            },
        );
        let due = q.pop_due(10);
        assert!(matches!(due[0], Event::Delivery { .. }));
        assert!(matches!(due[1], Event::PacketArrival { .. }));
    }

    #[test]
    fn empty_cycles_are_a_no_op_fast_path() {
        let mut q = EventQueue::with_horizon(16);
        let mut out = Vec::new();
        // draining an empty queue does nothing and keeps no stale state
        for t in 0..100 {
            q.pop_due_into(t, &mut out);
            assert!(out.is_empty());
        }
        assert_eq!(q.next_time(), None);
        // scheduling after a long quiet period still lands correctly
        q.schedule(150, credit(7, 0));
        q.pop_due_into(149, &mut out);
        assert!(out.is_empty(), "not due yet");
        q.pop_due_into(150, &mut out);
        assert_eq!(routers_of(&out), vec![7]);
        assert!(q.is_empty());
        // buffer capacity survives for reuse; a later drain reuses it
        let cap = out.capacity();
        q.schedule(151, credit(8, 0));
        q.pop_due_into(151, &mut out);
        assert_eq!(routers_of(&out), vec![8]);
        assert!(out.capacity() >= cap.min(1));
    }

    #[test]
    fn far_future_events_overflow_and_return_in_order() {
        let mut q = EventQueue::with_horizon(8);
        assert_eq!(q.horizon(), 8);
        // seq 0 lands in overflow (beyond the 8-cycle horizon)
        q.schedule(100, credit(0, 0));
        // seq 1 in a near bucket
        q.schedule(3, credit(1, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(3));
        assert_eq!(routers_of(&q.pop_due(50)), vec![1]);
        assert_eq!(q.next_time(), Some(100));
        // now cycle 100 is within the horizon of later schedules: a newer
        // event for the same cycle must drain *after* the overflow one
        let mut q2 = EventQueue::with_horizon(8);
        q2.schedule(100, credit(0, 0)); // overflow, seq 0
        let mut out = Vec::new();
        q2.pop_due_into(97, &mut out); // advance near 100
        q2.schedule(100, credit(1, 1)); // bucket, seq 1
        q2.pop_due_into(100, &mut out);
        assert_eq!(routers_of(&out), vec![0, 1]);
    }

    #[test]
    fn wheel_matches_legacy_heap_on_mixed_schedules() {
        // Pseudo-random schedule pattern interleaving near, far and
        // same-cycle events: both implementations must produce identical
        // drain sequences.
        let mut wheel = EventQueue::with_horizon(16);
        let mut heap = LegacyEventQueue::new();
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut id = 0u32;
        for now in 0..200u64 {
            for _ in 0..(rnd() % 4) {
                let at = now + 1 + rnd() % 40;
                wheel.schedule(at, credit(id, id));
                heap.schedule(at, credit(id, id));
                id += 1;
            }
            let a = wheel.pop_due(now);
            let b = heap.pop_due(now);
            assert_eq!(routers_of(&a), routers_of(&b), "divergence at cycle {now}");
        }
        // drain the tail
        let a = wheel.pop_due(1_000);
        let b = heap.pop_due(1_000);
        assert_eq!(routers_of(&a), routers_of(&b));
        assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn next_time_sees_ring_and_overflow() {
        let mut q = EventQueue::with_horizon(8);
        q.schedule(500, credit(0, 0));
        assert_eq!(q.next_time(), Some(500));
        q.schedule(4, credit(1, 1));
        assert_eq!(q.next_time(), Some(4));
        q.pop_due(4);
        assert_eq!(q.next_time(), Some(500));
        q.pop_due(500);
        assert_eq!(q.next_time(), None);
    }
}
