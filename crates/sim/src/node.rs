//! Compute nodes: traffic generation and source queues.
//!
//! Each node runs an injector (Bernoulli, bursty or ramp — see
//! [`InjectionKind`]) and keeps an unbounded source queue in front of its
//! router's injection port (as in FOGSim: the network interface never drops
//! traffic, so offered load is exactly the generated load and saturation
//! shows up as source-queue growth and latency blow-up rather than packet
//! loss).

use df_engine::DeterministicRng;
use df_model::{Cycle, Packet};
use df_topology::NodeId;
use df_traffic::{InjectionKind, Injector, TrafficPattern};
use std::collections::VecDeque;

/// A compute node: injector plus source queue.
#[derive(Debug, Clone)]
pub struct Node {
    injector: Injector,
    source_queue: VecDeque<Packet>,
    /// Round-robin pointer over the injection VCs of the attached router
    /// port.
    next_vc: usize,
    /// Statistics: packets generated / handed to the router.
    generated_phits: u64,
    injected_packets: u64,
}

impl Node {
    /// Create a node with its own RNG stream.
    pub fn new(
        node: NodeId,
        injection: InjectionKind,
        offered_load: f64,
        packet_size_phits: u32,
        rng: DeterministicRng,
    ) -> Self {
        Node {
            injector: Injector::new(node, injection, offered_load, packet_size_phits, rng),
            source_queue: VecDeque::new(),
            next_vc: 0,
            generated_phits: 0,
            injected_packets: 0,
        }
    }

    /// The node identifier.
    pub fn id(&self) -> NodeId {
        self.injector.node()
    }

    /// Generate this cycle's traffic (if any) into the source queue. Returns
    /// the number of phits generated (0 or the packet size).
    pub fn generate(
        &mut self,
        now: Cycle,
        pattern: &TrafficPattern,
        next_packet_id: &mut u64,
    ) -> u32 {
        if let Some(packet) = self.injector.tick(now, pattern, next_packet_id) {
            let phits = packet.size_phits;
            self.generated_phits += phits as u64;
            self.source_queue.push_back(packet);
            phits
        } else {
            0
        }
    }

    /// Enqueue a packet produced by the task layer (collective workloads)
    /// instead of the stochastic injector. It joins the same source queue
    /// and statistics as generated traffic, so the downstream injection
    /// machinery is identical for both.
    pub fn enqueue_task_packet(&mut self, packet: Packet) {
        self.generated_phits += packet.size_phits as u64;
        self.source_queue.push_back(packet);
    }

    /// Change the offered load (phase changes with a load override).
    pub fn set_offered_load(&mut self, load: f64) {
        self.injector.set_offered_load(load);
    }

    /// Peek the packet waiting to enter the network.
    pub fn head(&self) -> Option<&Packet> {
        self.source_queue.front()
    }

    /// Remove the head packet (it was accepted by the router's injection
    /// buffer).
    pub fn pop_head(&mut self) -> Option<Packet> {
        let p = self.source_queue.pop_front();
        if p.is_some() {
            self.injected_packets += 1;
        }
        p
    }

    /// Packets currently waiting in the source queue.
    pub fn queue_len(&self) -> usize {
        self.source_queue.len()
    }

    /// Total phits generated so far.
    pub fn generated_phits(&self) -> u64 {
        self.generated_phits
    }

    /// Total packets handed to the router so far.
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Round-robin pointer over injection VCs; advances on every call.
    pub fn take_vc_rr(&mut self, num_vcs: usize) -> usize {
        let s = self.next_vc % num_vcs.max(1);
        self.next_vc = (s + 1) % num_vcs.max(1);
        s
    }

    /// Serialise the node's persistent state: injector (RNG stream, load
    /// override, generation counter), source queue, VC round-robin pointer
    /// and statistics.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        self.injector.save_state(e);
        e.seq(self.source_queue.len());
        for p in &self.source_queue {
            p.encode(e);
        }
        e.usize(self.next_vc);
        e.u64(self.generated_phits);
        e.u64(self.injected_packets);
    }

    /// Restore the state written by [`Node::save_state`] into a freshly
    /// configured node.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        self.injector.restore_state(d)?;
        let n = d.seq(8)?;
        let mut queue = VecDeque::with_capacity(n);
        for _ in 0..n {
            queue.push_back(Packet::decode(d)?);
        }
        self.source_queue = queue;
        self.next_vc = d.usize()?;
        self.generated_phits = d.u64()?;
        self.injected_packets = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Dragonfly, DragonflyParams};
    use df_traffic::PatternKind;

    fn pattern() -> TrafficPattern {
        PatternKind::Uniform.build(Dragonfly::new(DragonflyParams::small()))
    }

    #[test]
    fn generation_fills_the_source_queue() {
        let pat = pattern();
        let mut node = Node::new(
            NodeId(3),
            InjectionKind::Bernoulli,
            1.0,
            1,
            DeterministicRng::new(1),
        );
        let mut id = 0;
        for now in 0..100 {
            node.generate(now, &pat, &mut id);
        }
        assert_eq!(node.queue_len(), 100);
        assert_eq!(node.generated_phits(), 100);
        assert_eq!(node.injected_packets(), 0);
        let p = node.pop_head().unwrap();
        assert_eq!(p.src, NodeId(3));
        assert_eq!(node.injected_packets(), 1);
        assert_eq!(node.queue_len(), 99);
    }

    #[test]
    fn head_is_fifo() {
        let pat = pattern();
        let mut node = Node::new(
            NodeId(0),
            InjectionKind::Bernoulli,
            1.0,
            1,
            DeterministicRng::new(2),
        );
        let mut id = 0;
        node.generate(0, &pat, &mut id);
        node.generate(1, &pat, &mut id);
        let first = node.head().unwrap().id;
        let popped = node.pop_head().unwrap();
        assert_eq!(popped.id, first);
        assert_ne!(node.head().unwrap().id, first);
    }

    #[test]
    fn vc_round_robin_cycles() {
        let mut node = Node::new(
            NodeId(0),
            InjectionKind::Bernoulli,
            0.5,
            8,
            DeterministicRng::new(3),
        );
        assert_eq!(node.take_vc_rr(3), 0);
        assert_eq!(node.take_vc_rr(3), 1);
        assert_eq!(node.take_vc_rr(3), 2);
        assert_eq!(node.take_vc_rr(3), 0);
    }

    #[test]
    fn load_override_changes_generation_rate() {
        let pat = pattern();
        let mut node = Node::new(
            NodeId(0),
            InjectionKind::Bernoulli,
            0.0,
            8,
            DeterministicRng::new(4),
        );
        let mut id = 0;
        for now in 0..1_000 {
            node.generate(now, &pat, &mut id);
        }
        assert_eq!(node.queue_len(), 0);
        node.set_offered_load(1.0);
        for now in 1_000..9_000 {
            node.generate(now, &pat, &mut id);
        }
        assert!(node.queue_len() > 800);
    }
}
