//! Seeded stochastic fault generation: MTBF/MTTR churn lowered into a
//! validated [`FaultPlan`].
//!
//! A [`ChurnModel`] describes *sustained failure churn* the way an operator
//! would: per-entity-class mean time between failures (MTBF) and mean time
//! to repair (MTTR), both in cycles, drawn from exponential distributions.
//! It is **not** interpreted online by the kernel — it *lowers* into the
//! existing declarative [`FaultPlan`] at configuration-build time, so churn
//! runs inherit every property the explicit fault subsystem already has:
//! schedule change-points (the idle fast-forward can never skip a churn
//! event), plan validation, and main-thread fault application that keeps
//! runs **bit-identical across the optimized, legacy and parallel kernels
//! at any worker count**.
//!
//! # Determinism
//!
//! The model carries its own `seed`, independent of the traffic seed, and
//! every entity (each link, router and node) draws its failure timeline
//! from its own [`DeterministicRng::split`] sub-stream. Lowering therefore
//! depends only on `(seed, topology, rates, window)` — never on iteration
//! order, worker count, or how many draws another entity made — so the same
//! model always lowers to the same plan and failure rate becomes a sweepable
//! axis: rerunning a cell, or running it under a different kernel, replays
//! the *identical* fault trajectory.
//!
//! # Lowering rules
//!
//! Per entity, alternating up/down interval lengths are drawn from
//! `Exp(mtbf)` / `Exp(mttr)`, rounded to whole cycles and clamped to at
//! least one cycle (so per-entity events are strictly ordered and plan
//! validation's same-cycle rule holds by construction). Events are emitted
//! only inside `[start, start + horizon)`; a repair that would land beyond
//! the window is *not* emitted — the network finishes in the degraded
//! state, which is exactly what the conservation counters report.
//!
//! Node failures need a live spare for their reroute-to-spare semantics
//! (see [`FaultKind::NodeFail`]). Lowering walks the merged node timeline
//! in cycle order, maintaining the failed set, and assigns each failure the
//! first live node scanning upward from `node + 1` (wrapping). A failure
//! with no live spare anywhere — only possible when every other node is
//! simultaneously down — is skipped along with its repair.

use crate::fault::FaultPlan;
use df_engine::DeterministicRng;
use df_model::Cycle;
use df_topology::{NodeId, Port, PortLayout, PortPeer, Topology};
use serde::{Deserialize, Serialize};

/// Mean time between failures / mean time to repair, in cycles, for one
/// entity class. Both means parameterise exponential distributions and must
/// be positive and finite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnRate {
    /// Mean up-time between failures (cycles).
    pub mtbf: f64,
    /// Mean down-time until repair (cycles).
    pub mttr: f64,
}

impl ChurnRate {
    /// A churn rate with the given MTBF and MTTR (cycles).
    pub fn new(mtbf: f64, mttr: f64) -> Self {
        ChurnRate { mtbf, mttr }
    }

    fn validate(&self, class: &str) -> Result<(), String> {
        for (name, v) in [("mtbf", self.mtbf), ("mttr", self.mttr)] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "churn model: {class} {name} must be positive and finite, got {v}"
                ));
            }
        }
        Ok(())
    }
}

/// A seeded MTBF/MTTR churn model over the network's entity classes.
///
/// Attach one to a scenario (`Scenario::churn`) or a configuration builder;
/// it lowers into the scenario's [`FaultPlan`] when the configuration is
/// built. See the module docs for semantics and determinism guarantees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Seed of the churn random streams (independent of the traffic seed).
    pub seed: u64,
    /// First cycle of the churn window (no event fires before it).
    pub start: Cycle,
    /// Length of the churn window: events fire in `[start, start + horizon)`.
    pub horizon: Cycle,
    /// Churn on global (inter-group) links, if any.
    pub global_links: Option<ChurnRate>,
    /// Churn on local (intra-group) links, if any.
    pub local_links: Option<ChurnRate>,
    /// Churn on routers (graceful source drain / restore), if any.
    pub routers: Option<ChurnRate>,
    /// Churn on compute nodes (fail to spare / restore), if any.
    pub nodes: Option<ChurnRate>,
}

/// Disjoint high-bit tags keep every entity class in its own family of
/// split streams regardless of entity index.
const STREAM_GLOBAL_LINK: u64 = 1 << 40;
const STREAM_LOCAL_LINK: u64 = 2 << 40;
const STREAM_ROUTER: u64 = 3 << 40;
const STREAM_NODE: u64 = 4 << 40;

impl ChurnModel {
    /// A churn model with the given seed and window and no rates (lowering
    /// an all-`None` model yields an empty plan).
    pub fn new(seed: u64, start: Cycle, horizon: Cycle) -> Self {
        ChurnModel {
            seed,
            start,
            horizon,
            global_links: None,
            local_links: None,
            routers: None,
            nodes: None,
        }
    }

    /// Set the global-link churn rate.
    pub fn global_links(mut self, rate: ChurnRate) -> Self {
        self.global_links = Some(rate);
        self
    }

    /// Set the local-link churn rate.
    pub fn local_links(mut self, rate: ChurnRate) -> Self {
        self.local_links = Some(rate);
        self
    }

    /// Set the router (drain/restore) churn rate.
    pub fn routers(mut self, rate: ChurnRate) -> Self {
        self.routers = Some(rate);
        self
    }

    /// Set the node (fail-to-spare/restore) churn rate.
    pub fn nodes(mut self, rate: ChurnRate) -> Self {
        self.nodes = Some(rate);
        self
    }

    /// Check the model's parameters (positive finite rates, non-empty
    /// window when any rate is set).
    pub fn validate(&self) -> Result<(), String> {
        let classes = [
            ("global-link", &self.global_links),
            ("local-link", &self.local_links),
            ("router", &self.routers),
            ("node", &self.nodes),
        ];
        for (class, rate) in classes {
            if let Some(rate) = rate {
                rate.validate(class)?;
            }
        }
        let any = classes.iter().any(|(_, r)| r.is_some());
        if any && self.horizon == 0 {
            return Err("churn model: horizon must be positive when any rate is set".into());
        }
        Ok(())
    }

    /// Lower the model into a [`FaultPlan`] for `topo`. Deterministic in
    /// `(seed, topology, rates, window)`; the result always passes
    /// [`FaultPlan::validate`] (guarded by a debug assertion here and by
    /// configuration validation at build time).
    pub fn generate(&self, topo: &impl Topology) -> FaultPlan {
        let root = DeterministicRng::new(self.seed);
        let end = self.start.saturating_add(self.horizon);
        let mut plan = FaultPlan::new();

        if let Some(rate) = &self.global_links {
            plan = self.churn_links(plan, topo, rate, &root, STREAM_GLOBAL_LINK, true);
        }
        if let Some(rate) = &self.local_links {
            plan = self.churn_links(plan, topo, rate, &root, STREAM_LOCAL_LINK, false);
        }
        if let Some(rate) = &self.routers {
            for router in topo.routers() {
                let mut rng = root.split(STREAM_ROUTER | u64::from(router.0));
                for (fail_at, restore_at) in intervals(&mut rng, rate, self.start, end) {
                    plan = plan.router_drain(fail_at, router);
                    if let Some(at) = restore_at {
                        plan = plan.router_restore(at, router);
                    }
                }
            }
        }
        if let Some(rate) = &self.nodes {
            plan = self.churn_nodes(plan, topo, rate, &root);
        }

        debug_assert_eq!(plan.validate(topo), Ok(()));
        plan
    }

    /// Churn one link class. Each bidirectional link is owned by its
    /// lexicographically smaller `(router, port)` endpoint so it gets
    /// exactly one stream; the stream index is the owning endpoint's flat
    /// port number, which is stable under topology iteration order.
    fn churn_links(
        &self,
        mut plan: FaultPlan,
        topo: &impl Topology,
        rate: &ChurnRate,
        root: &DeterministicRng,
        stream_tag: u64,
        global: bool,
    ) -> FaultPlan {
        let layout = topo.layout();
        let end = self.start.saturating_add(self.horizon);
        for router in topo.routers() {
            let offsets = if global {
                layout.globals()
            } else {
                layout.locals()
            };
            for k in 0..offsets {
                let port = if global {
                    Port::global(&layout, k)
                } else {
                    Port::local(&layout, k)
                };
                let PortPeer::Router(peer, back) = topo.peer(router, port) else {
                    continue; // dangling link of a partially-populated network
                };
                if (peer.0, back.0) < (router.0, port.0) {
                    continue; // owned (and churned) by the other endpoint
                }
                let flat = u64::from(router.0) * u64::from(layout.radix()) + u64::from(port.0);
                let mut rng = root.split(stream_tag | flat);
                for (fail_at, restore_at) in intervals(&mut rng, rate, self.start, end) {
                    plan = plan.link_down(fail_at, router, port);
                    if let Some(at) = restore_at {
                        plan = plan.link_up(at, router, port);
                    }
                }
            }
        }
        plan
    }

    /// Churn the nodes: draw per-node fail/repair intervals, then walk the
    /// merged timeline in cycle order assigning each failure the first live
    /// spare scanning upward from `node + 1` (wrapping). Restores sort
    /// before failures within a cycle so a node repaired in cycle `c` can
    /// immediately serve as a spare in cycle `c`.
    fn churn_nodes(
        &self,
        mut plan: FaultPlan,
        topo: &impl Topology,
        rate: &ChurnRate,
        root: &DeterministicRng,
    ) -> FaultPlan {
        use std::collections::BTreeSet;
        let num_nodes = topo.num_nodes();
        let end = self.start.saturating_add(self.horizon);

        // (cycle, is_fail, node, paired restore cycle if any)
        let mut timeline: Vec<(Cycle, bool, u32, Option<Cycle>)> = Vec::new();
        for n in 0..num_nodes {
            let mut rng = root.split(STREAM_NODE | u64::from(n));
            for (fail_at, restore_at) in intervals(&mut rng, rate, self.start, end) {
                timeline.push((fail_at, true, n, restore_at));
                if let Some(at) = restore_at {
                    timeline.push((at, false, n, None));
                }
            }
        }
        timeline.sort_unstable_by_key(|&(at, is_fail, node, _)| (at, is_fail, node));

        let mut failed: BTreeSet<u32> = BTreeSet::new();
        let mut skipped_restores: BTreeSet<(Cycle, u32)> = BTreeSet::new();
        for (at, is_fail, node, restore_at) in timeline {
            if is_fail {
                let spare = (1..num_nodes)
                    .map(|d| (node + d) % num_nodes)
                    .find(|cand| !failed.contains(cand));
                match spare {
                    Some(spare) => {
                        plan = plan.node_fail(at, NodeId(node), NodeId(spare));
                        failed.insert(node);
                    }
                    None => {
                        // no live spare anywhere: drop the whole interval
                        if let Some(r) = restore_at {
                            skipped_restores.insert((r, node));
                        }
                    }
                }
            } else if skipped_restores.remove(&(at, node)) {
                // repair of a skipped failure: nothing to restore
            } else {
                plan = plan.node_restore(at, NodeId(node));
                failed.remove(&node);
            }
        }
        plan
    }
}

/// Alternating up/down intervals for one entity: `(fail_at, restore_at)`
/// pairs inside `[start, end)`, whole cycles, every interval at least one
/// cycle long. A repair landing at or beyond `end` is reported as `None`
/// (degraded end state) and terminates the timeline.
fn intervals(
    rng: &mut DeterministicRng,
    rate: &ChurnRate,
    start: Cycle,
    end: Cycle,
) -> Vec<(Cycle, Option<Cycle>)> {
    let mut out = Vec::new();
    let mut t = start;
    loop {
        t = t.saturating_add(draw_cycles(rng, rate.mtbf));
        if t >= end {
            break;
        }
        let fail_at = t;
        t = t.saturating_add(draw_cycles(rng, rate.mttr));
        if t >= end {
            out.push((fail_at, None));
            break;
        }
        out.push((fail_at, Some(t)));
    }
    out
}

/// One exponential draw rounded to whole cycles, clamped to `[1, 2^53]` so
/// per-entity events stay strictly ordered and casts stay exact.
fn draw_cycles(rng: &mut DeterministicRng, mean: f64) -> Cycle {
    rng.exponential(mean).round().clamp(1.0, 9.0e15) as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use df_topology::{Dragonfly, DragonflyParams};

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small())
    }

    fn busy_model() -> ChurnModel {
        ChurnModel::new(7, 100, 2_000)
            .global_links(ChurnRate::new(3_000.0, 400.0))
            .local_links(ChurnRate::new(8_000.0, 400.0))
            .routers(ChurnRate::new(10_000.0, 500.0))
            .nodes(ChurnRate::new(5_000.0, 600.0))
    }

    #[test]
    fn lowering_is_deterministic_and_valid() {
        let t = topo();
        let model = busy_model();
        let a = model.generate(&t);
        let b = model.generate(&t);
        assert_eq!(a, b, "same model must lower to the same plan");
        assert!(!a.is_empty(), "rates are high enough to produce events");
        assert_eq!(a.validate(&t), Ok(()));
        // every event inside the window
        let end = 100 + 2_000;
        assert!(a.events().iter().all(|e| e.at >= 100 && e.at < end));
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let t = topo();
        let a = busy_model().generate(&t);
        let b = ChurnModel {
            seed: 8,
            ..busy_model()
        }
        .generate(&t);
        assert_ne!(a, b);
    }

    #[test]
    fn all_entity_classes_appear_under_heavy_churn() {
        let t = topo();
        let plan = ChurnModel::new(3, 0, 20_000)
            .global_links(ChurnRate::new(2_000.0, 300.0))
            .local_links(ChurnRate::new(2_000.0, 300.0))
            .routers(ChurnRate::new(2_000.0, 300.0))
            .nodes(ChurnRate::new(2_000.0, 300.0))
            .generate(&t);
        assert_eq!(plan.validate(&t), Ok(()));
        let mut saw = [false; 4];
        for e in plan.events() {
            match e.kind {
                FaultKind::LinkDown { .. } | FaultKind::LinkUp { .. } => saw[0] = true,
                FaultKind::RouterDrain { .. } => saw[1] = true,
                FaultKind::RouterRestore { .. } => saw[2] = true,
                FaultKind::NodeFail { .. } => saw[3] = true,
                FaultKind::NodeRestore { .. } => {}
            }
        }
        assert_eq!(saw, [true; 4], "expected events of every class");
    }

    #[test]
    fn node_spares_are_live_at_their_fail_cycle() {
        let t = topo();
        // brutal node churn: long repairs force many concurrent failures,
        // stressing the spare-scan against the failed set
        let plan = ChurnModel::new(11, 0, 50_000)
            .nodes(ChurnRate::new(1_000.0, 20_000.0))
            .generate(&t);
        // validate() walks the timeline and rejects any dead spare
        assert_eq!(plan.validate(&t), Ok(()));
        assert!(
            plan.events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::NodeFail { .. }))
                .count()
                > 10,
            "churn heavy enough to overlap failures"
        );
    }

    #[test]
    fn empty_model_lowers_to_an_empty_plan() {
        let t = topo();
        let plan = ChurnModel::new(5, 0, 10_000).generate(&t);
        assert!(plan.is_empty());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let m = ChurnModel::new(1, 0, 100).nodes(ChurnRate::new(0.0, 10.0));
        assert!(m.validate().unwrap_err().contains("positive"));
        let m = ChurnModel::new(1, 0, 100).nodes(ChurnRate::new(10.0, f64::NAN));
        assert!(m.validate().unwrap_err().contains("finite"));
        let m = ChurnModel::new(1, 0, 0).nodes(ChurnRate::new(10.0, 10.0));
        assert!(m.validate().unwrap_err().contains("horizon"));
        assert!(ChurnModel::new(1, 0, 0).validate().is_ok());
        assert!(busy_model().validate().is_ok());
    }

    #[test]
    fn builders_compose_and_new_starts_empty() {
        let m = ChurnModel::new(9, 50, 500);
        assert_eq!(
            (m.global_links, m.local_links, m.routers, m.nodes),
            (None, None, None, None)
        );
        let m = m.nodes(ChurnRate::new(100.0, 10.0));
        assert_eq!(m.nodes, Some(ChurnRate::new(100.0, 10.0)));
        assert_eq!((m.seed, m.start, m.horizon), (9, 50, 500));
    }
}
