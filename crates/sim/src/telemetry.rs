//! Streaming run telemetry: fixed-width cycle windows with per-window
//! delivery throughput, latency quantiles and simulation speed, plus
//! automatic steady-state detection that replaces fixed warm-up budgets.
//!
//! The collector is a pure observer: it differences the network's cumulative
//! counters (and its always-on latency histogram) between window boundaries,
//! so attaching it never perturbs the simulation — a run produces the same
//! results, bit for bit, with or without telemetry.
//!
//! Steady-state detection uses a relative-spread criterion: the run is
//! declared steady once the last `stability_windows` windows all delivered
//! traffic and both their throughput and their mean latency stay within
//! `tolerance` (relative, e.g. `0.08` = ±8 % around the mean). Saturated
//! runs never pass the latency criterion (the mean climbs without bound as
//! source queues grow), so detection also acts as a saturation probe:
//! [`SteadyStateExperiment::run_streaming`] falls back to a bounded window
//! budget and reports that steady state was never reached.
//!
//! [`SteadyStateExperiment::run_streaming`]: crate::experiment::SteadyStateExperiment::run_streaming

use df_model::Cycle;

use crate::network::Network;

/// One closed telemetry window.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Window index (0-based).
    pub index: usize,
    /// First cycle of the window.
    pub start_cycle: Cycle,
    /// One past the last cycle of the window.
    pub end_cycle: Cycle,
    /// Packets delivered inside the window.
    pub delivered_packets: u64,
    /// Phits delivered inside the window.
    pub delivered_phits: u64,
    /// Delivered throughput in phits/(node·cycle).
    pub throughput: f64,
    /// Phits generated inside the window.
    pub generated_phits: u64,
    /// Packets in flight at the window boundary.
    pub in_flight: u64,
    /// Mean latency of the window's deliveries (cycles; NaN if none).
    pub avg_latency: f64,
    /// Median latency of the window's deliveries (cycles; NaN if none).
    pub p50_latency: f64,
    /// 99th-percentile latency of the window's deliveries (cycles; NaN if
    /// none; [`f64::INFINITY`] when the rank falls past the telemetry
    /// histogram's top edge — the true percentile is unbounded above, never
    /// silently clamped).
    pub p99_latency: f64,
    /// Wall-clock seconds the window took to simulate.
    pub wall_seconds: f64,
    /// Simulation speed over the window (cycles per wall-clock second; NaN
    /// when the window closed with zero measurable wall time, so means over
    /// windows propagate NaN instead of being poisoned by an infinity).
    pub cycles_per_second: f64,
}

impl WindowStats {
    /// Render the window as a single log line (the streaming service's
    /// progress output).
    pub fn log_line(&self) -> String {
        format!(
            "window {:>3} [{:>7}, {:>7}): delivered {:>6} pkts ({:.4} phits/node/cycle), \
             latency avg {:.1} p50 {:.1} p99 {:.1}, {:.0} cycles/s",
            self.index,
            self.start_cycle,
            self.end_cycle,
            self.delivered_packets,
            self.throughput,
            self.avg_latency,
            self.p50_latency,
            self.p99_latency,
            self.cycles_per_second
        )
    }
}

/// Cumulative-counter marks taken at a window boundary.
#[derive(Debug, Clone)]
struct Marks {
    cycle: Cycle,
    delivered_packets: u64,
    delivered_phits: u64,
    generated_phits: u64,
    latency_bins: Vec<u64>,
    latency_underflow: u64,
    latency_overflow: u64,
    latency_count: u64,
    latency_sum: f64,
}

impl Marks {
    fn take(net: &Network) -> Self {
        let m = net.metrics();
        let h = m.telemetry_histogram();
        Marks {
            cycle: net.cycle(),
            delivered_packets: m.delivered_packets_total(),
            delivered_phits: m.delivered_phits_total(),
            generated_phits: m.generated_phits_total,
            latency_bins: h.bins().to_vec(),
            latency_underflow: h.underflow(),
            latency_overflow: h.overflow(),
            latency_count: h.count(),
            latency_sum: h.sum(),
        }
    }
}

/// Streaming telemetry collector over a [`Network`].
#[derive(Debug)]
pub struct StreamingTelemetry {
    window_cycles: u64,
    num_nodes: u32,
    histogram_low: f64,
    histogram_bin_width: f64,
    windows: Vec<WindowStats>,
    last: Marks,
    last_instant: std::time::Instant,
}

impl StreamingTelemetry {
    /// Attach a collector to `net`, anchoring the first window at the
    /// network's current cycle. `window_cycles` is the window width.
    ///
    /// # Panics
    /// Panics if `window_cycles` is zero.
    pub fn new(net: &Network, window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "telemetry windows need a nonzero width");
        let h = net.metrics().telemetry_histogram();
        let (low, width) = h
            .iter_bins()
            .next()
            .map(|(lo, hi, _)| (lo, hi - lo))
            .unwrap_or((0.0, 1.0));
        StreamingTelemetry {
            window_cycles,
            num_nodes: net.config().topology.num_nodes(),
            histogram_low: low,
            histogram_bin_width: width,
            windows: Vec::new(),
            last: Marks::take(net),
            last_instant: std::time::Instant::now(),
        }
    }

    /// The configured window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Windows closed so far.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Advance the network by one window and close it, returning the
    /// window's statistics.
    pub fn step_window(&mut self, net: &mut Network) -> &WindowStats {
        net.run_cycles(self.window_cycles);
        self.close_window(net)
    }

    /// Close a window at the network's current position (the caller advanced
    /// the network itself — e.g. the sweep runner, which interleaves
    /// checkpoints with windows).
    pub fn close_window(&mut self, net: &Network) -> &WindowStats {
        let now = Marks::take(net);
        let instant = std::time::Instant::now();
        let wall = instant.duration_since(self.last_instant).as_secs_f64();
        let cycles = now.cycle.saturating_sub(self.last.cycle);

        let delivered_packets = now.delivered_packets - self.last.delivered_packets;
        let delivered_phits = now.delivered_phits - self.last.delivered_phits;
        let delta_count = now.latency_count - self.last.latency_count;
        let delta_sum = now.latency_sum - self.last.latency_sum;
        let avg_latency = if delta_count > 0 {
            delta_sum / delta_count as f64
        } else {
            f64::NAN
        };
        let delta_bins: Vec<u64> = now
            .latency_bins
            .iter()
            .zip(&self.last.latency_bins)
            .map(|(&a, &b)| a - b)
            .collect();
        let delta_underflow = now.latency_underflow - self.last.latency_underflow;
        let delta_overflow = now.latency_overflow - self.last.latency_overflow;
        let p50 = self.delta_percentile(&delta_bins, delta_underflow, delta_overflow, 50.0);
        let p99 = self.delta_percentile(&delta_bins, delta_underflow, delta_overflow, 99.0);

        let stats = WindowStats {
            index: self.windows.len(),
            start_cycle: self.last.cycle,
            end_cycle: now.cycle,
            delivered_packets,
            delivered_phits,
            throughput: if cycles > 0 {
                delivered_phits as f64 / (self.num_nodes as f64 * cycles as f64)
            } else {
                0.0
            },
            generated_phits: now.generated_phits - self.last.generated_phits,
            in_flight: net.in_flight(),
            avg_latency,
            p50_latency: p50,
            p99_latency: p99,
            wall_seconds: wall,
            cycles_per_second: window_cycles_per_second(cycles, wall),
        };
        self.last = now;
        self.last_instant = instant;
        self.windows.push(stats);
        self.windows.last().expect("window was just pushed")
    }

    /// Percentile over a windowed (differenced) histogram, mirroring
    /// [`df_engine::Histogram::percentile`]: the upper edge of the bin
    /// holding the requested rank, NaN when the window delivered nothing,
    /// and [`f64::INFINITY`] when the rank lands in the overflow bucket —
    /// all the histogram knows there is "above the top edge", and clamping
    /// to the edge would under-report tail latency exactly when it explodes.
    fn delta_percentile(&self, bins: &[u64], underflow: u64, overflow: u64, pct: f64) -> f64 {
        let total = bins.iter().sum::<u64>() + underflow + overflow;
        if total == 0 {
            return f64::NAN;
        }
        let target = (pct.clamp(0.0, 100.0) / 100.0 * total as f64).ceil() as u64;
        let mut seen = underflow;
        if seen >= target {
            return self.histogram_low;
        }
        for (i, &c) in bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.histogram_low + (i as f64 + 1.0) * self.histogram_bin_width;
            }
        }
        f64::INFINITY
    }

    /// Whether the trailing `stability_windows` windows are steady: all
    /// delivered traffic, and both throughput and mean latency stayed
    /// within `tolerance` (relative spread around their means).
    pub fn steady(&self, stability_windows: usize, tolerance: f64) -> bool {
        let n = stability_windows.max(2);
        if self.windows.len() < n {
            return false;
        }
        let tail = &self.windows[self.windows.len() - n..];
        if tail.iter().any(|w| w.delivered_packets == 0) {
            return false;
        }
        relative_spread_within(tail.iter().map(|w| w.throughput), tolerance)
            && relative_spread_within(tail.iter().map(|w| w.avg_latency), tolerance)
    }
}

/// Simulation speed over a window. Zero wall time (fast host, tiny window,
/// coarse clock) must not produce an infinity: a single such window would
/// poison any mean over windows, while NaN propagates visibly.
fn window_cycles_per_second(cycles: u64, wall_seconds: f64) -> f64 {
    if wall_seconds > 0.0 {
        cycles as f64 / wall_seconds
    } else {
        f64::NAN
    }
}

/// `(max - min) <= tolerance * mean` over the values (false on NaN).
fn relative_spread_within(values: impl Iterator<Item = f64>, tolerance: f64) -> bool {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut count = 0u32;
    for v in values {
        if !v.is_finite() {
            return false;
        }
        min = min.min(v);
        max = max.max(v);
        sum += v;
        count += 1;
    }
    if count == 0 || sum <= 0.0 {
        return false;
    }
    (max - min) <= tolerance * (sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;
    use df_model::NetworkConfig;
    use df_routing::RoutingKind;
    use df_topology::DragonflyParams;
    use df_traffic::PatternKind;

    fn config(load: f64) -> SimulationConfig {
        SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Base)
            .pattern(PatternKind::Uniform)
            .offered_load(load)
            .warmup_cycles(100)
            .measurement_cycles(400)
            .seed(9)
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn windows_partition_the_run_and_sum_to_the_totals() {
        let mut net = Network::new(config(0.3));
        let mut telemetry = StreamingTelemetry::new(&net, 200);
        for _ in 0..5 {
            telemetry.step_window(&mut net);
        }
        let windows = telemetry.windows();
        assert_eq!(windows.len(), 5);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert_eq!(w.start_cycle, 200 * i as u64);
            assert_eq!(w.end_cycle, 200 * (i + 1) as u64);
        }
        let total: u64 = windows.iter().map(|w| w.delivered_packets).sum();
        assert_eq!(total, net.metrics().delivered_packets_total());
        // a moderately loaded network delivers in every window after the first
        assert!(windows[1..].iter().all(|w| w.delivered_packets > 0));
        let w = &windows[3];
        assert!(w.avg_latency > 0.0);
        assert!(w.p50_latency > 0.0 && w.p50_latency <= w.p99_latency);
        assert!(w.throughput > 0.0 && w.throughput < 1.0);
    }

    #[test]
    fn telemetry_does_not_perturb_the_simulation() {
        let mut plain = Network::new(config(0.3));
        plain.run_cycles(1_000);

        let mut observed = Network::new(config(0.3));
        let mut telemetry = StreamingTelemetry::new(&observed, 100);
        for _ in 0..10 {
            telemetry.step_window(&mut observed);
        }
        assert_eq!(plain.cycle(), observed.cycle());
        assert_eq!(
            plain.metrics().delivered_packets_total(),
            observed.metrics().delivered_packets_total()
        );
        assert_eq!(plain.snapshot(), observed.snapshot());
    }

    #[test]
    fn light_load_reaches_steady_state() {
        let mut net = Network::new(config(0.2));
        let mut telemetry = StreamingTelemetry::new(&net, 300);
        let mut steady_at = None;
        for i in 0..30 {
            telemetry.step_window(&mut net);
            if telemetry.steady(4, 0.25) {
                steady_at = Some(i);
                break;
            }
        }
        assert!(
            steady_at.is_some(),
            "an unsaturated uniform run must settle: {:?}",
            telemetry
                .windows()
                .iter()
                .map(|w| (w.throughput, w.avg_latency))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn saturated_load_does_not_pass_the_latency_criterion() {
        // ADV+1 under minimal routing at high load saturates: latency climbs
        // monotonically as source queues grow, so the spread test keeps
        // failing
        let cfg = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Minimal)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(0.9)
            .warmup_cycles(100)
            .measurement_cycles(400)
            .seed(9)
            .build()
            .unwrap();
        let mut net = Network::new(cfg);
        let mut telemetry = StreamingTelemetry::new(&net, 300);
        for _ in 0..12 {
            telemetry.step_window(&mut net);
        }
        assert!(
            !telemetry.steady(4, 0.05),
            "a saturating run must not be declared steady"
        );
    }

    #[test]
    fn overflow_tail_reports_infinity_not_the_histogram_top_edge() {
        use df_model::{Packet, PacketId};
        use df_topology::NodeId;
        // idle network: every latency sample in this window is fabricated
        let mut net = Network::new(config(0.0));
        let mut telemetry = StreamingTelemetry::new(&net, 100);
        let top_edge = 5_000.0; // Metrics::new telemetry histogram range
                                // 98 in-range deliveries and 2 far past the top edge: p50 stays a
                                // real bin edge, but the p99 rank lands in the overflow bucket
        for i in 0..100u64 {
            let latency = if i < 98 { 40 } else { 9_000 };
            let p = Packet::new(PacketId(i), NodeId(0), NodeId(9), 8, 0);
            net.metrics_mut().record_delivery(&p, latency);
        }
        net.run_cycles(100);
        let w = telemetry.step_window(&mut net).clone();
        assert!(w.p50_latency.is_finite() && w.p50_latency <= top_edge);
        assert!(
            w.p99_latency.is_infinite() && w.p99_latency > 0.0,
            "an overflow-bucket rank must surface as +inf, not clamp to the \
             top edge (got p99 = {})",
            w.p99_latency
        );
        // the mean stays finite (the histogram sums overflow samples too),
        // so steadiness detection — a throughput + mean-latency criterion —
        // is unaffected by the tail-percentile semantics change
        assert!(w.avg_latency.is_finite());
    }

    #[test]
    fn zero_wall_window_speed_is_nan_not_infinity() {
        assert!(window_cycles_per_second(500, 0.0).is_nan());
        assert!(window_cycles_per_second(0, 0.0).is_nan());
        assert_eq!(window_cycles_per_second(500, 2.0), 250.0);
        // a NaN window no longer poisons a mean into infinity; it stays NaN,
        // which downstream consumers can detect (infinity cannot be told
        // apart from "very fast")
        let windows = [window_cycles_per_second(500, 0.0), 250.0];
        let mean = windows.iter().sum::<f64>() / windows.len() as f64;
        assert!(mean.is_nan());
    }

    #[test]
    fn steady_handles_nan_speed_but_rejects_nan_latency() {
        let net = Network::new(config(0.0));
        let mut telemetry = StreamingTelemetry::new(&net, 100);
        let window = |index: usize, avg_latency: f64| WindowStats {
            index,
            start_cycle: 100 * index as u64,
            end_cycle: 100 * (index + 1) as u64,
            delivered_packets: 50,
            delivered_phits: 400,
            throughput: 0.2,
            generated_phits: 400,
            in_flight: 3,
            avg_latency,
            p50_latency: avg_latency,
            p99_latency: avg_latency,
            wall_seconds: 0.0,
            cycles_per_second: f64::NAN, // zero-wall window
        };
        // steadiness is a throughput + latency criterion: a NaN simulation
        // speed (zero-wall window) must NOT block it...
        telemetry.windows = (0..4).map(|i| window(i, 30.0)).collect();
        assert!(telemetry.steady(4, 0.1));
        // ...but a NaN mean latency must
        telemetry.windows = (0..4).map(|i| window(i, f64::NAN)).collect();
        assert!(!telemetry.steady(4, 0.1));
    }

    #[test]
    fn empty_windows_report_nan_latency_and_block_steadiness() {
        let mut net = Network::new(config(0.0));
        let mut telemetry = StreamingTelemetry::new(&net, 100);
        for _ in 0..4 {
            telemetry.step_window(&mut net);
        }
        assert!(telemetry.windows().iter().all(|w| w.delivered_packets == 0));
        assert!(telemetry.windows()[0].avg_latency.is_nan());
        assert!(!telemetry.steady(3, 1.0));
    }
}
