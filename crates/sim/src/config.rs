//! Simulation configuration: everything a single run needs.

use df_model::NetworkConfig;
use df_routing::{RoutingConfig, RoutingKind};
use df_topology::{DragonflyParams, TopologyParams};
use df_traffic::{
    validate_job_disjointness, InjectionKind, JobSpec, PatternKind, TaskWorkload, TrafficSchedule,
};
use serde::{Deserialize, Serialize};

use crate::churn::ChurnModel;
use crate::fault::FaultPlan;
use crate::scenario::Scenario;

/// Which simulation-kernel implementation [`crate::Network`] runs.
///
/// Every kernel is bit-for-bit deterministic and produces identical results
/// for identical configurations and seeds — including
/// [`KernelMode::Parallel`] at *any* worker count (guarded by
/// `tests/determinism.rs` and `tests/kernel_equivalence.rs`); they differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelMode {
    /// Time-wheel event queue, activity-gated router iteration,
    /// allocation-free per-cycle loop. The default.
    #[default]
    Optimized,
    /// The original kernel: binary-heap event queue and a full scan of every
    /// router every cycle. Kept as the baseline for `BENCH_kernel.json` and
    /// the determinism cross-checks.
    Legacy,
    /// The optimized kernel with its phases sharded across a persistent
    /// worker pool (see `df-sim`'s `parallel` module): PB/ECtN exchange by
    /// group, routing + allocation and link transmission by active router,
    /// with barriers between phases and cross-router effects merged in
    /// ascending router order — results are bit-identical to
    /// [`KernelMode::Optimized`] for any worker count.
    Parallel {
        /// Total shards (the main thread runs one of them; `workers - 1`
        /// threads are spawned). `0` means auto-detect from the host's
        /// available parallelism. The worker count never affects results,
        /// only wall-clock time.
        workers: usize,
    },
}

/// Upper bound on explicit worker counts — far above any sensible host,
/// purely a typo guard (e.g. a load value passed where a worker count was
/// meant).
pub const MAX_PARALLEL_WORKERS: usize = 64;

impl KernelMode {
    /// The kernel selected by the `DF_SIM_KERNEL` environment variable
    /// (case-insensitive):
    ///
    /// * `"legacy"` — [`KernelMode::Legacy`],
    /// * `"parallel"` — [`KernelMode::Parallel`] with auto-detected workers,
    /// * `"parallel:N"` / `"parallel=N"` — [`KernelMode::Parallel`] with
    ///   `N` workers,
    /// * anything else, including unset — [`KernelMode::Optimized`].
    ///
    /// Used as the builder default so CI can run the whole test suite under
    /// any kernel without touching any test.
    ///
    /// # Panics
    /// Panics on a *malformed* parallel spec (`"parallel:2x"`,
    /// `"parallel 4"`, …): a typo must not silently demote an entire CI leg
    /// to the optimized kernel.
    pub fn from_env() -> Self {
        match std::env::var("DF_SIM_KERNEL") {
            Ok(v) => Self::parse_env_value(&v),
            _ => KernelMode::Optimized,
        }
    }

    /// Parse one `DF_SIM_KERNEL` value (see [`KernelMode::from_env`] for
    /// the accepted forms and the panic on malformed parallel specs).
    fn parse_env_value(v: &str) -> Self {
        let lower = v.trim().to_ascii_lowercase();
        if lower == "legacy" {
            KernelMode::Legacy
        } else if lower == "parallel" {
            KernelMode::Parallel { workers: 0 }
        } else if lower.starts_with("parallel") {
            let workers = lower
                .strip_prefix("parallel:")
                .or_else(|| lower.strip_prefix("parallel="))
                .and_then(|n| n.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    panic!(
                        "DF_SIM_KERNEL={v:?} looks like a parallel spec but is malformed; \
                         use \"parallel\", \"parallel:N\" or \"parallel=N\""
                    )
                });
            KernelMode::Parallel { workers }
        } else {
            KernelMode::Optimized
        }
    }

    /// The effective shard count this mode runs with: 1 for the sequential
    /// kernels, the explicit worker count for [`KernelMode::Parallel`], and
    /// the host's available parallelism (capped at 8) when that count is 0
    /// (auto). Never affects results — only how the work is scheduled.
    pub fn resolved_workers(&self) -> usize {
        match *self {
            KernelMode::Optimized | KernelMode::Legacy => 1,
            KernelMode::Parallel { workers: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            KernelMode::Parallel { workers } => workers,
        }
    }
}

/// Error produced by [`SimulationConfig::validate`] /
/// [`SimulationConfigBuilder::build`], naming the offending field.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The `network` field (router/link microarchitecture) is invalid.
    Network(String),
    /// The `routing_config` field (routing thresholds) is invalid.
    RoutingConfig(String),
    /// The `injection` field (injection process) is invalid.
    Injection(String),
    /// The `offered_load` field is outside `[0, 1]`.
    OfferedLoad(f64),
    /// The `measurement_cycles` field is zero.
    MeasurementWindow,
    /// The `topology` field is invalid for simulation.
    Topology(String),
    /// The `kernel` field requests an absurd worker count.
    Kernel(String),
    /// The `faults` field does not validate against the topology.
    Faults(String),
    /// The attached churn model is invalid.
    Churn(String),
    /// The `workload` field does not fit the topology.
    Workload(String),
    /// One phase of the `schedule` field is invalid.
    SchedulePhase {
        /// Index of the offending phase.
        phase: usize,
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Network(e) => write!(f, "network: {e}"),
            ConfigError::RoutingConfig(e) => write!(f, "routing_config: {e}"),
            ConfigError::Injection(e) => write!(f, "injection: {e}"),
            ConfigError::OfferedLoad(load) => write!(
                f,
                "offered_load: must be in [0,1] phits/(node*cycle), got {load}"
            ),
            ConfigError::MeasurementWindow => write!(
                f,
                "measurement_cycles: measurement window must be at least one cycle"
            ),
            ConfigError::Topology(e) => write!(f, "topology: {e}"),
            ConfigError::Kernel(e) => write!(f, "kernel: {e}"),
            ConfigError::Faults(e) => write!(f, "faults: {e}"),
            ConfigError::Churn(e) => write!(f, "churn: {e}"),
            ConfigError::Workload(e) => write!(f, "workload: {e}"),
            ConfigError::SchedulePhase { phase, reason } => {
                write!(f, "schedule phase {phase}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> String {
        e.to_string()
    }
}

/// Complete configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Topology kind and sizing parameters (canonical Dragonfly or
    /// Megafly/Dragonfly+).
    pub topology: TopologyParams,
    /// Router/link microarchitecture (Table I).
    pub network: NetworkConfig,
    /// Routing mechanism.
    pub routing: RoutingKind,
    /// Routing thresholds.
    pub routing_config: RoutingConfig,
    /// Traffic pattern schedule (constant for steady-state experiments,
    /// pattern switch for transients).
    pub schedule: TrafficSchedule,
    /// Injection process every node runs (Bernoulli, bursty or ramp).
    pub injection: InjectionKind,
    /// Timed link/router fault events (empty for healthy-network runs).
    pub faults: FaultPlan,
    /// Optional rank-level task workload. When set, nodes stop running their
    /// stochastic injectors and instead execute the workload's
    /// dependency-gated collective sequence (see `df_sim::task`); when
    /// `None`, the task layer is completely inert and the run is a plain
    /// packet-level experiment.
    pub workload: Option<TaskWorkload>,
    /// Concurrent multi-job traffic: several collective applications with
    /// node-disjoint placements sharing the network. Unlike `workload`,
    /// jobs layer *over* the stochastic injectors — collectives run under
    /// background load. Mutually exclusive with `workload`; empty means no
    /// job layer at all.
    #[serde(default)]
    pub jobs: Vec<JobSpec>,
    /// Offered load in phits/(node·cycle).
    pub offered_load: f64,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Warm-up cycles before measurement starts.
    pub warmup_cycles: u64,
    /// Measurement window length in cycles.
    pub measurement_cycles: u64,
    /// Simulation-kernel implementation (optimized time-wheel kernel by
    /// default; the legacy kernel exists for benchmarking and cross-checks).
    pub kernel: KernelMode,
}

impl SimulationConfig {
    /// Start building a configuration.
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder::default()
    }

    /// Total simulated cycles (warm-up plus measurement).
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measurement_cycles
    }

    /// Validate the combination of parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.network.validate().map_err(ConfigError::Network)?;
        self.routing_config
            .validate()
            .map_err(ConfigError::RoutingConfig)?;
        self.injection.validate().map_err(ConfigError::Injection)?;
        if !(0.0..=1.0).contains(&self.offered_load) {
            return Err(ConfigError::OfferedLoad(self.offered_load));
        }
        if self.measurement_cycles == 0 {
            return Err(ConfigError::MeasurementWindow);
        }
        if self.topology.num_groups() < 2 {
            return Err(ConfigError::Topology(
                "the network needs at least two groups".into(),
            ));
        }
        if let KernelMode::Parallel { workers } = self.kernel {
            if workers > MAX_PARALLEL_WORKERS {
                return Err(ConfigError::Kernel(format!(
                    "parallel kernel worker count {workers} exceeds the sanity cap of {MAX_PARALLEL_WORKERS} (use 0 for auto-detection)"
                )));
            }
        }
        let topo = self.topology.build();
        self.faults.validate(&topo).map_err(ConfigError::Faults)?;
        if let Some(workload) = &self.workload {
            let groups = self.topology.num_groups();
            let nodes_per_group = self.topology.nodes_per_group();
            workload
                .validate(groups, nodes_per_group)
                .map_err(ConfigError::Workload)?;
        }
        if !self.jobs.is_empty() {
            if self.workload.is_some() {
                return Err(ConfigError::Workload(
                    "a single task workload and a job set are mutually exclusive \
                     (wrap the workload in a JobSpec to combine them)"
                        .into(),
                ));
            }
            let groups = self.topology.num_groups();
            let nodes_per_group = self.topology.nodes_per_group();
            for (i, job) in self.jobs.iter().enumerate() {
                job.validate(groups, nodes_per_group)
                    .map_err(|e| ConfigError::Workload(format!("job #{i}: {e}")))?;
            }
            validate_job_disjointness(&self.jobs, groups, nodes_per_group)
                .map_err(ConfigError::Workload)?;
        }
        for (i, phase) in self.schedule.phases().iter().enumerate() {
            phase
                .pattern
                .validate(&topo)
                .map_err(|e| ConfigError::SchedulePhase {
                    phase: i,
                    reason: e,
                })?;
            if let Some(load) = phase.load {
                if !(0.0..=1.0).contains(&load) {
                    return Err(ConfigError::SchedulePhase {
                        phase: i,
                        reason: format!("load must be in [0,1], got {load}"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`SimulationConfig`].
///
/// Defaults: the small (9-group, 72-node) topology with Table I router
/// parameters, Base routing with thresholds calibrated for that topology,
/// uniform traffic at 10 % load, seed 0, and a short warm-up/measurement
/// suitable for tests. The figure-regeneration harness overrides these with
/// larger values.
#[derive(Debug, Clone)]
pub struct SimulationConfigBuilder {
    topology: TopologyParams,
    network: NetworkConfig,
    routing: RoutingKind,
    routing_config: Option<RoutingConfig>,
    schedule: TrafficSchedule,
    injection: InjectionKind,
    faults: FaultPlan,
    churn: Option<ChurnModel>,
    workload: Option<TaskWorkload>,
    jobs: Vec<JobSpec>,
    offered_load: f64,
    seed: u64,
    warmup_cycles: u64,
    measurement_cycles: u64,
    kernel: KernelMode,
}

impl Default for SimulationConfigBuilder {
    fn default() -> Self {
        SimulationConfigBuilder {
            topology: DragonflyParams::small().into(),
            network: NetworkConfig::paper_table1(),
            routing: RoutingKind::Base,
            routing_config: None,
            schedule: TrafficSchedule::constant(PatternKind::Uniform),
            injection: InjectionKind::Bernoulli,
            faults: FaultPlan::new(),
            churn: None,
            workload: None,
            jobs: Vec::new(),
            offered_load: 0.1,
            seed: 0,
            warmup_cycles: 1_000,
            measurement_cycles: 2_000,
            kernel: KernelMode::from_env(),
        }
    }
}

impl SimulationConfigBuilder {
    /// Set the topology kind and sizing parameters. Accepts
    /// [`DragonflyParams`], [`df_topology::MegaflyParams`] or a
    /// [`TopologyParams`] directly.
    pub fn topology(mut self, topology: impl Into<TopologyParams>) -> Self {
        self.topology = topology.into();
        self
    }

    /// Set the router/link configuration.
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Set the routing mechanism.
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Override the routing thresholds (otherwise calibrated automatically
    /// for the chosen topology per the paper's §VI-A rule).
    pub fn routing_config(mut self, config: RoutingConfig) -> Self {
        self.routing_config = Some(config);
        self
    }

    /// Use a constant traffic pattern.
    pub fn pattern(mut self, pattern: PatternKind) -> Self {
        self.schedule = TrafficSchedule::constant(pattern);
        self
    }

    /// Use an arbitrary traffic schedule (transient experiments).
    pub fn schedule(mut self, schedule: TrafficSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Set the injection process (Bernoulli by default).
    pub fn injection(mut self, injection: InjectionKind) -> Self {
        self.injection = injection;
        self
    }

    /// Apply a declarative [`Scenario`]: its phases become the traffic
    /// schedule, and its injection process, fault plan and task workload
    /// replace the current ones.
    pub fn scenario(mut self, scenario: &Scenario) -> Self {
        self.schedule = scenario.schedule();
        self.injection = scenario.injection;
        self.faults = scenario.fault_plan().clone();
        self.churn = scenario.churn_model().cloned();
        self.workload = scenario.workload().cloned();
        self.jobs = scenario.jobs().to_vec();
        self
    }

    /// Set the fault plan (empty, i.e. a healthy network, by default).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a stochastic churn model. At [`build`](Self::build) time it is
    /// lowered against the configured topology into concrete fault events
    /// and merged into the fault plan, so the resulting
    /// [`SimulationConfig`] carries only plain, validated faults — the
    /// lowering depends on nothing but the model (its own seed included),
    /// never on the run's traffic seed, routing or kernel.
    pub fn churn(mut self, churn: ChurnModel) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Attach a rank-level task workload: nodes hosting ranks execute its
    /// collective sequence instead of running their stochastic injectors.
    pub fn workload(mut self, workload: TaskWorkload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Set the whole job set at once (multi-job traffic; node-disjointness
    /// and placement bounds are validated at [`build`](Self::build) time).
    pub fn jobs(mut self, jobs: Vec<JobSpec>) -> Self {
        self.jobs = jobs;
        self
    }

    /// Append one job to the job set (builder style).
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Set the offered load in phits/(node·cycle).
    pub fn offered_load(mut self, load: f64) -> Self {
        self.offered_load = load;
        self
    }

    /// Set the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the warm-up length in cycles.
    pub fn warmup_cycles(mut self, cycles: u64) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Set the measurement window length in cycles.
    pub fn measurement_cycles(mut self, cycles: u64) -> Self {
        self.measurement_cycles = cycles;
        self
    }

    /// Select the simulation-kernel implementation.
    pub fn kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Finalise and validate the configuration. An attached churn model is
    /// lowered here: its generated fault events are merged into the fault
    /// plan and the combined plan is validated like any hand-written one.
    pub fn build(self) -> Result<SimulationConfig, ConfigError> {
        let routing_config = self.routing_config.unwrap_or_else(|| {
            RoutingConfig::calibrated_for(&self.topology.layout(), &self.network.vcs)
        });
        let faults = match &self.churn {
            Some(churn) => {
                churn.validate().map_err(ConfigError::Churn)?;
                let topo = self.topology.build();
                self.faults.clone().merged(churn.generate(&topo))
            }
            None => self.faults,
        };
        let config = SimulationConfig {
            topology: self.topology,
            network: self.network,
            routing: self.routing,
            routing_config,
            schedule: self.schedule,
            injection: self.injection,
            faults,
            workload: self.workload,
            jobs: self.jobs,
            offered_load: self.offered_load,
            seed: self.seed,
            warmup_cycles: self.warmup_cycles,
            measurement_cycles: self.measurement_cycles,
            kernel: self.kernel,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let c = SimulationConfig::builder().build().unwrap();
        assert_eq!(c.routing, RoutingKind::Base);
        assert_eq!(c.topology, DragonflyParams::small().into());
        assert!(c.validate().is_ok());
        assert_eq!(c.total_cycles(), 3_000);
        // thresholds were auto-calibrated for the small topology
        assert!(c.routing_config.contention_threshold < 6);
    }

    #[test]
    fn builder_overrides_apply() {
        let c = SimulationConfig::builder()
            .topology(DragonflyParams::medium())
            .routing(RoutingKind::Ectn)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(0.35)
            .seed(7)
            .warmup_cycles(100)
            .measurement_cycles(200)
            .build()
            .unwrap();
        assert_eq!(c.routing, RoutingKind::Ectn);
        assert_eq!(c.offered_load, 0.35);
        assert_eq!(c.seed, 7);
        assert_eq!(c.total_cycles(), 300);
    }

    #[test]
    fn explicit_routing_config_is_not_recalibrated() {
        let rc = RoutingConfig::paper_table1().with_contention_threshold(4);
        let c = SimulationConfig::builder()
            .routing_config(rc)
            .build()
            .unwrap();
        assert_eq!(c.routing_config.contention_threshold, 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimulationConfig::builder()
            .offered_load(1.5)
            .build()
            .is_err());
        assert!(SimulationConfig::builder()
            .measurement_cycles(0)
            .build()
            .is_err());
    }

    #[test]
    fn scenario_sets_schedule_and_injection() {
        let scenario = Scenario::transient(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            500,
        )
        .injection(InjectionKind::Bursty {
            mean_on: 20.0,
            mean_off: 20.0,
        });
        let c = SimulationConfig::builder()
            .scenario(&scenario)
            .build()
            .unwrap();
        assert_eq!(c.schedule.change_points(), vec![500]);
        assert_eq!(
            c.injection,
            InjectionKind::Bursty {
                mean_on: 20.0,
                mean_off: 20.0
            }
        );
        // the default remains Bernoulli
        let d = SimulationConfig::builder().build().unwrap();
        assert_eq!(d.injection, InjectionKind::Bernoulli);
    }

    #[test]
    fn scenario_carries_its_fault_plan_into_the_config() {
        use df_topology::{Dragonfly, GroupId, RouterId};
        let topo = Dragonfly::new(DragonflyParams::small());
        let (gw, port) = FaultPlan::global_link_between(&topo, GroupId(0), GroupId(2));
        let scenario = Scenario::steady(PatternKind::Uniform)
            .link_down(100, gw, port)
            .link_up(300, gw, port);
        let c = SimulationConfig::builder()
            .scenario(&scenario)
            .build()
            .unwrap();
        assert_eq!(c.faults.len(), 2);
        assert_eq!(c.faults.change_points(), vec![100, 300]);
        // the default stays empty, and invalid plans are rejected
        assert!(SimulationConfig::builder()
            .build()
            .unwrap()
            .faults
            .is_empty());
        assert!(SimulationConfig::builder()
            .faults(FaultPlan::new().router_drain(5, RouterId(10_000)))
            .build()
            .is_err());
    }

    #[test]
    fn churn_lowers_into_the_fault_plan_at_build_time() {
        use crate::churn::ChurnRate;
        let churn = ChurnModel::new(7, 100, 2_000)
            .global_links(ChurnRate::new(3_000.0, 400.0))
            .nodes(ChurnRate::new(5_000.0, 600.0));
        let build = || {
            SimulationConfig::builder()
                .churn(churn.clone())
                .build()
                .unwrap()
        };
        let a = build();
        assert!(
            !a.faults.is_empty(),
            "a busy churn model must generate events"
        );
        // lowering is deterministic: the same model yields the same plan
        assert_eq!(a.faults, build().faults);
        // explicit events and churn-generated events merge (the drain
        // touches a router, which this model does not churn, so the
        // combined plan stays conflict-free)
        let merged = SimulationConfig::builder()
            .faults(FaultPlan::new().router_drain(50, df_topology::RouterId(3)))
            .churn(churn.clone())
            .build()
            .unwrap();
        assert_eq!(merged.faults.len(), a.faults.len() + 1);
        // scenarios carry their churn model into the builder
        let scenario = Scenario::steady(PatternKind::Uniform).churn(churn.clone());
        let via_scenario = SimulationConfig::builder()
            .scenario(&scenario)
            .build()
            .unwrap();
        assert_eq!(via_scenario.faults, a.faults);
        // invalid churn parameters are rejected at build time
        assert!(SimulationConfig::builder()
            .churn(ChurnModel::new(7, 0, 0).nodes(ChurnRate::new(1_000.0, 100.0)))
            .build()
            .is_err());
    }

    #[test]
    fn kernel_env_values_parse() {
        assert_eq!(KernelMode::parse_env_value("legacy"), KernelMode::Legacy);
        assert_eq!(KernelMode::parse_env_value("LEGACY"), KernelMode::Legacy);
        assert_eq!(
            KernelMode::parse_env_value("parallel"),
            KernelMode::Parallel { workers: 0 }
        );
        assert_eq!(
            KernelMode::parse_env_value(" Parallel "),
            KernelMode::Parallel { workers: 0 }
        );
        assert_eq!(
            KernelMode::parse_env_value("parallel:4"),
            KernelMode::Parallel { workers: 4 }
        );
        assert_eq!(
            KernelMode::parse_env_value("parallel=2"),
            KernelMode::Parallel { workers: 2 }
        );
        // non-parallel strings keep the documented optimized fallback
        assert_eq!(KernelMode::parse_env_value(""), KernelMode::Optimized);
        assert_eq!(
            KernelMode::parse_env_value("optimized"),
            KernelMode::Optimized
        );
        assert_eq!(KernelMode::parse_env_value("wheel"), KernelMode::Optimized);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_parallel_env_specs_abort_loudly() {
        let _ = KernelMode::parse_env_value("parallel:2x");
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn parallel_env_spec_with_wrong_separator_aborts() {
        let _ = KernelMode::parse_env_value("parallel-4");
    }

    #[test]
    fn parallel_kernel_mode_resolves_workers() {
        assert_eq!(KernelMode::Optimized.resolved_workers(), 1);
        assert_eq!(KernelMode::Legacy.resolved_workers(), 1);
        assert_eq!(KernelMode::Parallel { workers: 3 }.resolved_workers(), 3);
        // auto-detection picks at least one shard, bounded by the cap
        let auto = KernelMode::Parallel { workers: 0 }.resolved_workers();
        assert!((1..=8).contains(&auto));
    }

    #[test]
    fn absurd_worker_counts_are_rejected() {
        let c = SimulationConfig::builder()
            .kernel(KernelMode::Parallel { workers: 65 })
            .build();
        assert!(c.is_err(), "worker counts beyond the cap must not validate");
        assert!(SimulationConfig::builder()
            .kernel(KernelMode::Parallel { workers: 4 })
            .build()
            .is_ok());
    }

    #[test]
    fn invalid_injection_and_phase_parameters_are_rejected() {
        assert!(SimulationConfig::builder()
            .injection(InjectionKind::Bursty {
                mean_on: 0.1,
                mean_off: 10.0
            })
            .build()
            .is_err());
        // pattern parameters are validated against the topology
        assert!(SimulationConfig::builder()
            .pattern(PatternKind::Hotspot {
                hotspots: 0,
                fraction: 0.5
            })
            .build()
            .is_err());
        // per-phase load overrides are range-checked
        let overload = TrafficSchedule::from_phases(vec![
            df_traffic::PatternPhase {
                start: 0,
                pattern: PatternKind::Uniform,
                load: None,
            },
            df_traffic::PatternPhase {
                start: 100,
                pattern: PatternKind::Uniform,
                load: Some(2.0),
            },
        ]);
        assert!(SimulationConfig::builder()
            .schedule(overload)
            .build()
            .is_err());
    }
}
