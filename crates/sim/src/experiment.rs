//! Experiment runners: steady-state and transient, as in the paper's §IV-B.
//!
//! * **Steady state** — warm the network up, open the measurement window,
//!   simulate for a fixed number of cycles, and report average packet latency
//!   and accepted throughput (Figures 5, 6 and 10).
//! * **Transient** — warm up with one traffic pattern, switch to another at a
//!   known cycle, and record the time evolution of latency and of the
//!   percentage of misrouted packets (Figures 7, 8 and 9).

use df_engine::RunningStats;
use df_routing::RoutingKind;
use df_traffic::PatternKind;
use serde::{Deserialize, Serialize};

use crate::config::SimulationConfig;
use crate::network::Network;
use crate::telemetry::{StreamingTelemetry, WindowStats};

/// Result of one steady-state run (or the average of several seeds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SteadyStateReport {
    /// Routing mechanism used.
    pub routing: RoutingKind,
    /// Traffic pattern (of the first schedule phase).
    pub pattern: PatternKind,
    /// Offered load in phits/(node·cycle).
    pub offered_load: f64,
    /// Accepted load in phits/(node·cycle) over the measurement window.
    pub accepted_load: f64,
    /// Mean packet latency (generation → delivery), cycles.
    pub avg_packet_latency: f64,
    /// 95 % confidence half-width of the latency mean (within-run for single
    /// runs, across seeds for averaged runs).
    pub latency_ci95: f64,
    /// 99th-percentile packet latency, cycles.
    pub p99_latency: f64,
    /// Mean hop count.
    pub avg_hops: f64,
    /// Fraction of delivered packets that were globally misrouted.
    pub global_misroute_fraction: f64,
    /// Fraction of delivered packets that took a local detour.
    pub local_misroute_fraction: f64,
    /// Packets delivered in the measurement window.
    pub delivered_packets: u64,
    /// Packets lost to faults over the whole run (0 on healthy networks;
    /// summed when averaging seeds).
    pub dropped_on_fault_packets: u64,
    /// Packets retargeted to a failed destination's spare over the whole run
    /// (summed when averaging seeds).
    pub retargeted_packets: u64,
    /// Packets injected over the whole run — the denominator of loss rates
    /// (summed when averaging seeds).
    pub injected_packets: u64,
    /// Seed of the run (or the number of seeds averaged, for averaged
    /// reports).
    pub seed: u64,
}

/// A steady-state experiment: one configuration, one run.
#[derive(Debug, Clone)]
pub struct SteadyStateExperiment {
    config: SimulationConfig,
}

impl SteadyStateExperiment {
    /// Create the experiment.
    pub fn new(config: SimulationConfig) -> Self {
        SteadyStateExperiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Run warm-up plus measurement and report.
    pub fn run(&self) -> SteadyStateReport {
        let mut net = Network::new(self.config.clone());
        net.run_cycles(self.config.warmup_cycles);
        let start = net.cycle();
        net.metrics_mut().start_measurement(start);
        net.run_cycles(self.config.measurement_cycles);
        let summary = net.metrics().window_summary();
        let accepted = net.metrics().accepted_load(
            self.config.topology.num_nodes(),
            self.config.measurement_cycles,
        );
        SteadyStateReport {
            routing: self.config.routing,
            pattern: self.config.schedule.phases()[0].pattern,
            offered_load: self.config.offered_load,
            accepted_load: accepted,
            avg_packet_latency: summary.avg_packet_latency,
            latency_ci95: summary.latency_ci95,
            p99_latency: summary.p99_latency,
            avg_hops: summary.avg_hops,
            global_misroute_fraction: summary.global_misroute_fraction,
            local_misroute_fraction: summary.local_misroute_fraction,
            delivered_packets: summary.delivered_packets,
            dropped_on_fault_packets: net.metrics().dropped_on_fault_packets(),
            retargeted_packets: net.metrics().retargeted_packets(),
            injected_packets: net.injected_packets_total(),
            seed: self.config.seed,
        }
    }

    /// Run the same experiment with `num_seeds` consecutive seeds (starting
    /// at the configured seed) and average the reported metrics, as the paper
    /// does with its 10 simulations per point.
    pub fn run_averaged(&self, num_seeds: u64) -> SteadyStateReport {
        assert!(num_seeds > 0, "need at least one seed");
        let reports: Vec<SteadyStateReport> = (0..num_seeds)
            .map(|s| {
                let mut config = self.config.clone();
                config.seed = self.config.seed + s;
                SteadyStateExperiment::new(config).run()
            })
            .collect();
        average_reports(&self.config, &reports)
    }

    /// Run with streaming telemetry and automatic warm-up detection instead
    /// of the configured fixed budgets: windows of `opts.window_cycles` are
    /// simulated until the run turns steady (or `opts.max_warmup_windows`
    /// elapse), the measurement window opens there, and measurement runs for
    /// `opts.measure_windows` further windows.
    pub fn run_streaming(&self, opts: &StreamingRunOptions) -> StreamingReport {
        opts.validate().expect("valid streaming options");
        let mut net = Network::new(self.config.clone());
        let mut telemetry = StreamingTelemetry::new(&net, opts.window_cycles);

        let mut steady = false;
        for _ in 0..opts.max_warmup_windows {
            telemetry.step_window(&mut net);
            if telemetry.steady(opts.stability_windows, opts.tolerance) {
                steady = true;
                break;
            }
        }
        let warmup_cycles = net.cycle();
        net.metrics_mut().start_measurement(warmup_cycles);
        for _ in 0..opts.measure_windows {
            telemetry.step_window(&mut net);
        }
        let measurement_cycles = net.cycle() - warmup_cycles;

        let summary = net.metrics().window_summary();
        let accepted = net
            .metrics()
            .accepted_load(self.config.topology.num_nodes(), measurement_cycles);
        let report = SteadyStateReport {
            routing: self.config.routing,
            pattern: self.config.schedule.phases()[0].pattern,
            offered_load: self.config.offered_load,
            accepted_load: accepted,
            avg_packet_latency: summary.avg_packet_latency,
            latency_ci95: summary.latency_ci95,
            p99_latency: summary.p99_latency,
            avg_hops: summary.avg_hops,
            global_misroute_fraction: summary.global_misroute_fraction,
            local_misroute_fraction: summary.local_misroute_fraction,
            delivered_packets: summary.delivered_packets,
            dropped_on_fault_packets: net.metrics().dropped_on_fault_packets(),
            retargeted_packets: net.metrics().retargeted_packets(),
            injected_packets: net.injected_packets_total(),
            seed: self.config.seed,
        };
        StreamingReport {
            steady_state_detected: steady,
            warmup_cycles,
            measurement_cycles,
            windows: telemetry.windows().to_vec(),
            report,
        }
    }
}

/// Average per-seed steady-state reports into one (the shape
/// [`SteadyStateExperiment::run_averaged`] and the sweep runner both
/// produce): metric means with an across-seed latency confidence interval,
/// summed deliveries, and the seed count in the `seed` field.
pub fn average_reports(
    config: &SimulationConfig,
    reports: &[SteadyStateReport],
) -> SteadyStateReport {
    assert!(!reports.is_empty(), "need at least one report to average");
    let mut latency = RunningStats::new();
    let mut accepted = RunningStats::new();
    let mut p99 = RunningStats::new();
    let mut hops = RunningStats::new();
    let mut misroute_g = RunningStats::new();
    let mut misroute_l = RunningStats::new();
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut retargeted = 0u64;
    let mut injected = 0u64;
    for report in reports {
        latency.push(report.avg_packet_latency);
        accepted.push(report.accepted_load);
        p99.push(report.p99_latency);
        hops.push(report.avg_hops);
        misroute_g.push(report.global_misroute_fraction);
        misroute_l.push(report.local_misroute_fraction);
        delivered += report.delivered_packets;
        dropped += report.dropped_on_fault_packets;
        retargeted += report.retargeted_packets;
        injected += report.injected_packets;
    }
    SteadyStateReport {
        routing: config.routing,
        pattern: config.schedule.phases()[0].pattern,
        offered_load: config.offered_load,
        accepted_load: accepted.mean(),
        avg_packet_latency: latency.mean(),
        latency_ci95: latency.ci95_half_width(),
        p99_latency: p99.mean(),
        avg_hops: hops.mean(),
        global_misroute_fraction: misroute_g.mean(),
        local_misroute_fraction: misroute_l.mean(),
        delivered_packets: delivered,
        dropped_on_fault_packets: dropped,
        retargeted_packets: retargeted,
        injected_packets: injected,
        seed: reports.len() as u64,
    }
}

/// Options of [`SteadyStateExperiment::run_streaming`].
#[derive(Debug, Clone)]
pub struct StreamingRunOptions {
    /// Telemetry window width in cycles.
    pub window_cycles: u64,
    /// Trailing windows that must agree for steady-state declaration.
    pub stability_windows: usize,
    /// Relative spread tolerated across those windows (e.g. `0.08` = ±8 %).
    pub tolerance: f64,
    /// Warm-up budget: give up waiting for steadiness after this many
    /// windows (saturated runs never settle).
    pub max_warmup_windows: usize,
    /// Measurement length in windows once the window opens.
    pub measure_windows: usize,
}

impl Default for StreamingRunOptions {
    fn default() -> Self {
        StreamingRunOptions {
            window_cycles: 500,
            stability_windows: 4,
            tolerance: 0.15,
            max_warmup_windows: 40,
            measure_windows: 8,
        }
    }
}

impl StreamingRunOptions {
    /// Validate the combination of options.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_cycles == 0 {
            return Err("telemetry windows need a nonzero width".into());
        }
        if self.stability_windows < 2 {
            return Err("steady-state detection needs at least two windows".into());
        }
        if self.measure_windows == 0 {
            return Err("measurement needs at least one window".into());
        }
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err("the stability tolerance must be positive and finite".into());
        }
        Ok(())
    }
}

/// Result of a streaming run: the adaptive budgets actually used, the full
/// window series, and the standard steady-state report measured after the
/// detected warm-up.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Whether the stability criterion fired (false = the warm-up budget ran
    /// out, e.g. a saturated cell; the measurement still happened).
    pub steady_state_detected: bool,
    /// Cycle at which the measurement window opened.
    pub warmup_cycles: u64,
    /// Measured cycles after the window opened.
    pub measurement_cycles: u64,
    /// Every telemetry window of the run (warm-up and measurement).
    pub windows: Vec<WindowStats>,
    /// The steady-state report of the adaptive measurement window.
    pub report: SteadyStateReport,
}

/// Result of a transient experiment: time series centred on the
/// traffic-change cycle (x = 0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransientReport {
    /// Routing mechanism used.
    pub routing: RoutingKind,
    /// Cycle (absolute) at which the traffic pattern changed.
    pub switch_cycle: u64,
    /// `(cycles since the change, mean latency of packets delivered in the
    /// bin)`.
    pub latency_series: Vec<(i64, f64)>,
    /// `(cycles since the change, percentage of packets committing to a
    /// nonminimal global path in the bin)`.
    pub misroute_series: Vec<(i64, f64)>,
}

impl TransientReport {
    /// Mean latency over the bins inside `[from, to)` relative to the change.
    pub fn mean_latency_between(&self, from: i64, to: i64) -> f64 {
        mean_between(&self.latency_series, from, to)
    }

    /// Mean misrouted percentage over the bins inside `[from, to)`.
    pub fn mean_misroute_between(&self, from: i64, to: i64) -> f64 {
        mean_between(&self.misroute_series, from, to)
    }

    /// The first bin (relative cycle) after the change at which the misrouted
    /// percentage reaches `level`, if any — the adaptation delay of Figure 7b.
    pub fn misroute_reaches(&self, level: f64) -> Option<i64> {
        self.misroute_series
            .iter()
            .find(|(t, v)| *t >= 0 && *v >= level)
            .map(|(t, _)| *t)
    }
}

fn mean_between(series: &[(i64, f64)], from: i64, to: i64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from && *t < to)
        .map(|(_, v)| *v)
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// A transient experiment. The configuration's schedule must contain at least
/// one pattern change; the series are centred on the first one.
#[derive(Debug, Clone)]
pub struct TransientExperiment {
    config: SimulationConfig,
    /// Cycles simulated after the traffic change.
    pub follow_cycles: u64,
}

impl TransientExperiment {
    /// Create the experiment; `follow_cycles` is how long to keep simulating
    /// after the change (the x-axis extent of Figures 7–9).
    pub fn new(config: SimulationConfig, follow_cycles: u64) -> Self {
        assert!(
            !config.schedule.change_points().is_empty(),
            "a transient experiment needs a schedule with a pattern change"
        );
        TransientExperiment {
            config,
            follow_cycles,
        }
    }

    /// Run and report the time series.
    pub fn run(&self) -> TransientReport {
        let switch = self.config.schedule.change_points()[0];
        let mut net = Network::new(self.config.clone());
        net.run_cycles(switch + self.follow_cycles);
        TransientReport {
            routing: self.config.routing,
            switch_cycle: switch,
            latency_series: net.metrics().latency_series(),
            misroute_series: net.metrics().misroute_series(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::NetworkConfig;
    use df_topology::DragonflyParams;
    use df_traffic::TrafficSchedule;

    fn base_builder() -> crate::config::SimulationConfigBuilder {
        SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .warmup_cycles(200)
            .measurement_cycles(400)
            .seed(3)
    }

    #[test]
    fn steady_state_reports_sane_numbers() {
        let config = base_builder()
            .routing(RoutingKind::Minimal)
            .pattern(PatternKind::Uniform)
            .offered_load(0.1)
            .build()
            .unwrap();
        let report = SteadyStateExperiment::new(config).run();
        assert!(report.delivered_packets > 0);
        assert!(report.avg_packet_latency > 0.0);
        assert!(report.accepted_load > 0.0);
        assert!(
            report.accepted_load <= 0.15,
            "accepted cannot exceed offered by much"
        );
        assert!(report.avg_hops <= 3.0 + 1e-9);
        assert_eq!(report.routing, RoutingKind::Minimal);
        assert_eq!(report.pattern, PatternKind::Uniform);
    }

    #[test]
    fn averaging_over_seeds_tightens_the_report() {
        let config = base_builder()
            .routing(RoutingKind::Base)
            .pattern(PatternKind::Uniform)
            .offered_load(0.1)
            .build()
            .unwrap();
        let avg = SteadyStateExperiment::new(config).run_averaged(3);
        assert!(avg.delivered_packets > 0);
        assert!(avg.avg_packet_latency > 0.0);
        assert_eq!(avg.seed, 3, "averaged reports carry the seed count");
    }

    #[test]
    fn transient_experiment_produces_series_around_the_switch() {
        let schedule = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            400,
        );
        let config = base_builder()
            .routing(RoutingKind::Base)
            .schedule(schedule)
            .offered_load(0.2)
            .build()
            .unwrap();
        let report = TransientExperiment::new(config, 400).run();
        assert_eq!(report.switch_cycle, 400);
        assert!(!report.latency_series.is_empty());
        // there must be data both before and after the switch
        assert!(report.latency_series.iter().any(|(t, _)| *t < 0));
        assert!(report.latency_series.iter().any(|(t, _)| *t >= 0));
        let pre = report.mean_latency_between(-200, 0);
        assert!(pre.is_finite() && pre > 0.0);
    }

    #[test]
    #[should_panic(expected = "pattern change")]
    fn transient_requires_a_schedule_with_a_change() {
        let config = base_builder()
            .pattern(PatternKind::Uniform)
            .build()
            .unwrap();
        let _ = TransientExperiment::new(config, 100);
    }

    #[test]
    fn report_helpers_handle_empty_ranges() {
        let report = TransientReport {
            routing: RoutingKind::Base,
            switch_cycle: 0,
            latency_series: vec![(0, 100.0), (20, 200.0)],
            misroute_series: vec![(0, 0.0), (20, 80.0)],
        };
        assert_eq!(report.mean_latency_between(0, 40), 150.0);
        assert!(report.mean_latency_between(500, 600).is_nan());
        assert_eq!(report.misroute_reaches(50.0), Some(20));
        assert_eq!(report.misroute_reaches(99.0), None);
    }
}
