//! Phase-parallel sharded execution of [`Network::step`].
//!
//! [`KernelMode::Parallel`] shards routers across a persistent worker pool
//! and executes each phase of the per-cycle loop concurrently, with
//! barriers between phases. The contract — checked exhaustively by
//! `tests/kernel_equivalence.rs` — is that results are **bit-for-bit
//! identical** to the sequential optimized kernel for *any* worker count,
//! including 1.
//!
//! # Why this is deterministic
//!
//! Every phase of a cycle touches, per router, only
//!
//! 1. that router's own state (buffers, counters, PB/ECtN arrays) and its
//!    private RNG stream — sharded routers therefore never race, and each
//!    router's RNG consumes exactly the sequence it consumes sequentially;
//! 2. read-only context (topology, configuration, the routing algorithm);
//! 3. *cross-router effects*: link events (packet arrivals, deliveries,
//!    upstream credit returns) and global metrics commits.
//!
//! Effects of class 3 are never applied during a parallel phase. Each
//! worker appends them to its private staging buffer in the order it
//! produces them; after the phase barrier, the main thread replays the
//! buffers **in ascending shard order**. Shards are contiguous chunks of
//! the ascending-sorted active-router list (or of the group list for
//! control-plane phases), so the concatenation of the per-worker buffers is
//! exactly the sequence the sequential kernel would have produced — same
//! event insertion order, hence the same time-wheel tie-breaking, hence the
//! same simulation trajectory, for any number of workers.
//!
//! Control-plane dissemination (PB every cycle, ECtN on its period) shards
//! by *group* instead of by router: a group's exchange reads and writes
//! only that group's routers (see [`df_router::dissemination`]), and groups
//! are contiguous id ranges, so group chunks borrow disjointly too.
//!
//! The sequential optimized kernel runs the *same* shard executor inline
//! with a single shard, so "optimized" and "parallel" cannot drift apart:
//! they are one code path differing only in how chunks are scheduled.
//!
//! [`Network::step`]: crate::network::Network::step
//! [`KernelMode::Parallel`]: crate::config::KernelMode::Parallel

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use df_engine::DeterministicRng;
use df_model::{Cycle, NetworkConfig, VcId};
use df_router::{dissemination, AllocationRequest, Grant, Router};
use df_routing::algorithms::piggyback;
use df_routing::{minimal, Commitment, Decision, DecisionKind, RoutingAlgorithm};
use df_topology::{AnyTopology, GatewayLiveness, Port, PortClass, PortPeer, Topology};

use crate::events::Event;

/// A packet leaving an output buffer: `(port, packet, downstream VC, cycle
/// at which the tail clears the router)`.
pub(crate) type SentPacket = (Port, df_model::Packet, VcId, Cycle);

/// Read-only per-step context shared by every shard (all `Copy`, passed by
/// value — no synchronisation needed).
#[derive(Clone, Copy)]
pub(crate) struct StepCtx {
    /// The topology (plain sizing data).
    pub topo: AnyTopology,
    /// The routing mechanism and its thresholds.
    pub algorithm: RoutingAlgorithm,
    /// Router/link microarchitecture (link latencies for staged events).
    pub network: NetworkConfig,
}

/// Per-shard mutable state: scratch buffers for one router's allocation
/// round plus the staging buffers for cross-router effects. One instance
/// per shard; a shard touches only its own.
#[derive(Default)]
pub(crate) struct ShardState {
    /// Allocation requests of the router currently being processed.
    pub requests: Vec<AllocationRequest>,
    /// Routing decisions keyed by `(input port, input VC)` for grant lookup.
    pub decisions: Vec<((Port, VcId), Decision)>,
    /// Grant buffer reused across routers.
    pub grants: Vec<Grant>,
    /// Transmitted-packet buffer reused across routers.
    pub sent: Vec<SentPacket>,
    /// PB gather buffer (one group's `a·h` flags).
    pub pb_flat: Vec<bool>,
    /// ECtN combination buffer (one group's `a·h` counters).
    pub ectn_scratch: Vec<u32>,
    /// Staged link events `(completion cycle, event)`, replayed by the main
    /// thread in shard order after the phase barrier.
    pub staged_events: Vec<(Cycle, Event)>,
    /// Staged misroute-commit metrics `(cycle, globally misrouted)`.
    pub staged_commits: Vec<(Cycle, bool)>,
    /// Scratch list of `(port, vc)` heads the routing layer discarded this
    /// round (fault routing), cleared per router.
    pub discards: Vec<(Port, VcId)>,
    /// Packets discarded as unroutable, replayed by the main thread in
    /// shard order (global accounting: in-flight counters and drop
    /// metrics).
    pub staged_discards: Vec<df_model::Packet>,
    /// Number of fault re-commits applied in this shard this phase.
    pub staged_recommits: u64,
}

/// Which phase of the cycle a job executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PhaseKind {
    /// PB flag exchange + own-flag refresh, sharded by group.
    Pb,
    /// ECtN partial-array broadcast, sharded by group.
    Ectn,
    /// One routing + separable-allocation iteration, sharded over the
    /// active-router list.
    Alloc,
    /// Output-buffer link transmission, sharded over the active-router list.
    Transmit,
}

/// One phase dispatch: everything a shard needs, as raw pointers.
///
/// # Safety contract
///
/// * `routers`/`rngs` point to live arrays the main thread does not touch
///   between the start and end barriers;
/// * shard `w` dereferences only indices inside its [`chunk_bounds`] chunk
///   of `active` (router phases) or its chunk of group ids (control
///   phases), and only `shards[w]` — chunks are disjoint by construction,
///   so no two threads alias any `&mut`;
/// * `active` is sorted ascending and duplicate-free, so chunk order equals
///   router-id order and the post-barrier merge reproduces the sequential
///   effect sequence.
#[derive(Clone, Copy)]
pub(crate) struct PhaseJob {
    /// The phase to execute.
    pub kind: PhaseKind,
    /// Current cycle.
    pub now: Cycle,
    /// Base pointer of the router array.
    pub routers: *mut Router,
    /// Base pointer of the per-router RNG array (same indexing).
    pub rngs: *mut DeterministicRng,
    /// Sorted active-router indices (router phases; null for control
    /// phases).
    pub active: *const u32,
    /// Number of work items: active routers (router phases) or groups
    /// (control phases).
    pub num_items: usize,
    /// Base pointer of the per-shard state array.
    pub shards: *mut ShardState,
    /// Number of shards the work is split into.
    pub num_shards: usize,
    /// Shared read-only step context.
    pub ctx: *const StepCtx,
    /// Base pointer of the per-group flooded gateway-liveness views
    /// (indexed by group id): each group installs its own view during
    /// control phases (read-only for the phase's duration).
    pub linkviews: *const GatewayLiveness,
}

// Safety: the raw pointers are only dereferenced under the discipline
// documented on the struct; the type is shipped to workers through the
// pool's barrier protocol which establishes the necessary happens-before
// edges.
unsafe impl Send for PhaseJob {}

/// The half-open work range `[lo, hi)` of shard `w` out of `shards` over
/// `len` items: contiguous, balanced to within one item, and covering
/// `0..len` exactly when concatenated in shard order.
#[inline]
pub(crate) fn chunk_bounds(len: usize, shards: usize, w: usize) -> (usize, usize) {
    (w * len / shards, (w + 1) * len / shards)
}

/// Execute shard `w` of `job`.
///
/// # Safety
/// See the contract on [`PhaseJob`]; callers must guarantee shard indices
/// are unique per concurrent caller and the pointed-to arrays outlive the
/// call.
pub(crate) unsafe fn execute_shard(job: &PhaseJob, w: usize) {
    let ctx = &*job.ctx;
    let shard = &mut *job.shards.add(w);
    let (lo, hi) = chunk_bounds(job.num_items, job.num_shards, w);
    if lo >= hi {
        return;
    }
    match job.kind {
        PhaseKind::Alloc | PhaseKind::Transmit => {
            let active = std::slice::from_raw_parts(job.active, job.num_items);
            for &r in &active[lo..hi] {
                let router = &mut *job.routers.add(r as usize);
                if job.kind == PhaseKind::Alloc {
                    let rng = &mut *job.rngs.add(r as usize);
                    route_and_allocate_one(router, rng, ctx, job.now, shard);
                } else {
                    transmit_one(router, ctx, job.now, shard);
                }
            }
        }
        PhaseKind::Pb | PhaseKind::Ectn => {
            let a = ctx.topo.routers_per_group() as usize;
            for g in lo..hi {
                let group = std::slice::from_raw_parts_mut(job.routers.add(g * a), a);
                let linkview = &*job.linkviews.add(g);
                control_exchange_group(job.kind, group, ctx, linkview, shard);
            }
        }
    }
}

/// One control-plane exchange for one group (an exclusively borrowed,
/// contiguous slice of that group's routers). Every exchange additionally
/// installs the group's flooded gateway-liveness view into its routers —
/// the link-state bits piggybacked on the same messages (one integer
/// compare per router when nothing changed).
pub(crate) fn control_exchange_group(
    kind: PhaseKind,
    group: &mut [Router],
    ctx: &StepCtx,
    linkview: &GatewayLiveness,
    shard: &mut ShardState,
) {
    match kind {
        PhaseKind::Pb => {
            dissemination::pb_exchange_group(group, &mut shard.pb_flat);
            dissemination::install_linkview_group(group, linkview);
            // Refresh own flags after the group's exchange: installs never
            // read own flags of other groups and the refresh reads only
            // router-local congestion, so doing it group-by-group is
            // equivalent to the all-groups-then-all-routers order.
            for router in group.iter_mut() {
                piggyback::update_own_saturation(ctx.algorithm.config(), router);
            }
        }
        PhaseKind::Ectn => {
            dissemination::ectn_exchange_group(group, &mut shard.ectn_scratch);
            dissemination::install_linkview_group(group, linkview);
        }
        PhaseKind::Alloc | PhaseKind::Transmit => {
            unreachable!("router phases are not group exchanges")
        }
    }
}

/// One allocation iteration for one router: register new heads, compute
/// routing decisions, allocate, apply grants. Router-local except for the
/// staged credit events and misroute commits.
pub(crate) fn route_and_allocate_one(
    router: &mut Router,
    rng: &mut DeterministicRng,
    ctx: &StepCtx,
    now: Cycle,
    shard: &mut ShardState,
) {
    let router_id = router.id();
    let track_ectn = ctx.algorithm.kind().needs_ectn_broadcast();
    let num_ports = router.num_ports();

    // a. contention / ECtN registration of new head packets; the O(1)
    // counter guard makes this free on cycles with no new heads
    if router.has_unregistered_heads() {
        for p in 0..num_ports {
            let port = Port(p as u32);
            if router.port_occupancy(port) == 0 {
                continue;
            }
            let num_vcs = router.input(port).num_vcs();
            for v in 0..num_vcs {
                if !router.input(port).vc(v).head_needs_registration() {
                    continue;
                }
                let vc = VcId(v as u8);
                let (min_out, ectn_link) = {
                    let head = router
                        .input(port)
                        .vc(vc.index())
                        .head()
                        .expect("unregistered head exists");
                    let min_out = minimal::minimal_output(&ctx.topo, router_id, head.dst);
                    let ectn_link = if track_ectn {
                        minimal::ectn_link_for(
                            &ctx.topo,
                            router_id,
                            router.input(port).class(),
                            head,
                        )
                    } else {
                        None
                    };
                    (min_out, ectn_link)
                };
                router.register_head(port, vc, min_out, ectn_link);
            }
        }
    }

    // b. routing decisions for every occupied VC head (ports with no
    // queued packet are skipped in O(1)). Discard decisions (fault routing:
    // unroutable packets) are collected and applied after the loop, so
    // every head decides against the same pre-discard router state in every
    // kernel.
    shard.requests.clear();
    shard.decisions.clear();
    shard.discards.clear();
    {
        let router: &Router = router;
        for p in 0..num_ports {
            let port = Port(p as u32);
            if router.port_occupancy(port) == 0 {
                continue;
            }
            let input = router.input(port);
            for v in 0..input.num_vcs() {
                let Some(head) = input.vc(v).head() else {
                    continue;
                };
                let vc = VcId(v as u8);
                let decision = ctx.algorithm.decide(router, port, head, rng);
                if decision.kind == DecisionKind::Discard {
                    shard.discards.push((port, vc));
                    continue;
                }
                shard.requests.push(AllocationRequest {
                    input_port: port,
                    input_vc: vc,
                    output_port: decision.output_port,
                    output_vc: decision.output_vc,
                    size_phits: head.size_phits,
                });
                shard.decisions.push(((port, vc), decision));
            }
        }
    }

    // b'. apply the discards: release the packet's registrations, stage the
    // upstream credit return for the freed input slot and hand the packet
    // to the main thread for global accounting
    if !shard.discards.is_empty() {
        let discards = std::mem::take(&mut shard.discards);
        for &(port, vc) in &discards {
            discard_one(router, ctx, now, port, vc, shard);
        }
        shard.discards = discards;
        shard.discards.clear();
    }

    if shard.requests.is_empty() {
        return;
    }

    // c. separable allocation
    let mut grants = std::mem::take(&mut shard.grants);
    router.allocate_into(&shard.requests, &mut grants);

    // d. apply grants, staging upstream credit returns and commit metrics
    for grant in &grants {
        apply_one_grant_staged(router, ctx, now, grant, shard);
    }
    shard.grants = grants;
}

/// Discard one unroutable head packet (fault routing): router-local release
/// plus staged cross-router effects — the upstream credit return for the
/// freed input buffer slot and the packet itself for the main thread's
/// in-flight/drop accounting. Shared by every kernel.
pub(crate) fn discard_one(
    router: &mut Router,
    ctx: &StepCtx,
    now: Cycle,
    port: Port,
    vc: VcId,
    shard: &mut ShardState,
) {
    let router_id = router.id();
    let (packet, input_class) = router.discard_head(port, vc);
    if input_class != PortClass::Terminal {
        if let PortPeer::Router(upstream, upstream_port) = ctx.topo.peer(router_id, port) {
            let latency = ctx.network.link_latency_for(input_class) as Cycle;
            shard.staged_events.push((
                now + latency,
                Event::CreditReturn {
                    router: upstream,
                    port: upstream_port,
                    vc,
                    phits: packet.size_phits,
                },
            ));
        }
    }
    shard.staged_discards.push(packet);
}

/// Apply one grant: commit the routing decision to the head packet, record
/// misroute statistics (staged), move the packet to its output buffer and
/// stage the upstream credit return. Also used by the legacy kernel, which
/// flushes the staged effects immediately after each grant — same per-sink
/// order, so sharing the implementation keeps the kernels equivalent by
/// construction.
pub(crate) fn apply_one_grant_staged(
    router: &mut Router,
    ctx: &StepCtx,
    now: Cycle,
    grant: &Grant,
    shard: &mut ShardState,
) {
    let router_id = router.id();
    let decision = shard
        .decisions
        .iter()
        .find(|(k, _)| *k == (grant.input_port, grant.input_vc))
        .map(|(_, d)| *d)
        .expect("grant matches a request");
    // apply the commitment to the head packet before it moves
    {
        let group = router.group();
        if let Some(head) = router
            .input_mut(grant.input_port)
            .vc_mut(grant.input_vc.index())
            .head_mut()
        {
            match decision.commitment {
                Commitment::None => {}
                Commitment::Intermediate {
                    router: inter,
                    misroute,
                } => head.routing.commit_intermediate(inter, misroute),
                Commitment::NonminimalGlobal { gateway, port } => {
                    head.routing.commit_nonminimal_global(gateway, port)
                }
                Commitment::LocalDetour { router: detour } => {
                    head.routing.commit_local_detour(detour, group)
                }
                // fault re-commits: replace or abandon a committed
                // continuation whose link died
                Commitment::RecommitGlobal { gateway, port } => {
                    head.routing.recommit_nonminimal_global(gateway, port)
                }
                Commitment::AbandonNonminimal => head.routing.abandon_nonminimal_global(),
                Commitment::RecommitIntermediate { router: inter } => {
                    head.routing.recommit_intermediate(inter)
                }
                Commitment::AbandonIntermediate => head.routing.abandon_intermediate(),
                Commitment::AbandonLocalDetour => head.routing.abandon_local_detour(),
            }
        }
        if decision.commitment.is_fault_recommit() {
            shard.staged_recommits += 1;
        }
    }
    // misrouted-percentage statistics: count each packet once, when it
    // takes its first global hop
    if grant.output_port.class(&ctx.topo.layout()) == PortClass::Global {
        let head = router
            .input(grant.input_port)
            .vc(grant.input_vc.index())
            .head()
            .expect("granted head exists");
        if head.routing.global_hops == 0 {
            shard.staged_commits.push((now, head.routing.flags.global));
        }
    }
    let applied = router.apply_grant(grant, now);
    // stage the upstream credit return
    if applied.input_class != PortClass::Terminal {
        if let PortPeer::Router(upstream, upstream_port) =
            ctx.topo.peer(router_id, grant.input_port)
        {
            let latency = ctx.network.link_latency_for(applied.input_class) as Cycle;
            shard.staged_events.push((
                now + latency,
                Event::CreditReturn {
                    router: upstream,
                    port: upstream_port,
                    vc: grant.input_vc,
                    phits: applied.freed_phits,
                },
            ));
        }
    }
}

/// Link transmission for one router: drain ready output buffers and stage
/// the resulting arrival/delivery events.
pub(crate) fn transmit_one(router: &mut Router, ctx: &StepCtx, now: Cycle, shard: &mut ShardState) {
    shard.sent.clear();
    router.transmit_outputs_into(now, &mut shard.sent);
    let router_id = router.id();
    for (port, packet, vc, tail_at) in shard.sent.drain(..) {
        match ctx.topo.peer(router_id, port) {
            PortPeer::Node(node) => {
                let latency = ctx.network.latencies.terminal_link as Cycle;
                shard
                    .staged_events
                    .push((tail_at + latency, Event::Delivery { node, packet }));
            }
            PortPeer::Router(peer, peer_port) => {
                let class = port.class(&ctx.topo.layout());
                let latency = ctx.network.link_latency_for(class) as Cycle;
                shard.staged_events.push((
                    tail_at + latency,
                    Event::PacketArrival {
                        router: peer,
                        port: peer_port,
                        vc,
                        packet,
                    },
                ));
            }
            PortPeer::Unconnected => {
                unreachable!("routing never selects an unconnected port")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// How long a barrier waiter spins before parking on the condvar. Short:
/// on a loaded or single-core host the releaser cannot run while we spin,
/// so parking quickly is the safe default; on an idle multi-core host the
/// spin window absorbs the common fast case.
const BARRIER_SPIN_ROUNDS: u32 = 256;

/// A reusable generation-counting barrier with a bounded spin before
/// parking. Unlike `std::sync::Barrier`, waiters first spin briefly so the
/// per-phase rendezvous of the simulation loop stays cheap.
struct SenseBarrier {
    participants: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl SenseBarrier {
    fn new(participants: usize) -> Self {
        SenseBarrier {
            participants,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// Block until all participants have called `wait` for the current
    /// generation.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.participants {
            self.count.store(0, Ordering::Release);
            // publish the new generation under the lock so parked waiters
            // cannot miss the wakeup
            let _guard = self.lock.lock().expect("barrier lock poisoned");
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
            self.condvar.notify_all();
        } else {
            for _ in 0..BARRIER_SPIN_ROUNDS {
                if self.generation.load(Ordering::Acquire) != generation {
                    return;
                }
                std::hint::spin_loop();
            }
            let mut guard = self.lock.lock().expect("barrier lock poisoned");
            while self.generation.load(Ordering::Acquire) == generation {
                guard = self.condvar.wait(guard).expect("barrier lock poisoned");
            }
        }
    }
}

/// Shared state between the main thread and the pool workers.
struct PoolShared {
    /// The current phase job, written by the main thread strictly before
    /// the start barrier and read by workers strictly after it.
    job: UnsafeCell<Option<PhaseJob>>,
    /// Released by the main thread to begin a phase (or shut down).
    start: SenseBarrier,
    /// Reached by every shard when its chunk is done.
    end: SenseBarrier,
    /// Set (before releasing `start`) to terminate the workers.
    stop: AtomicBool,
    /// Set by a worker whose shard panicked; checked by the main thread
    /// after the end barrier.
    panicked: AtomicBool,
}

// Safety: `job` is only mutated by the main thread between phases, and the
// barriers order that mutation before any worker read (and all worker
// reads before the next mutation).
unsafe impl Sync for PoolShared {}

/// A persistent pool of `num_shards - 1` worker threads; the main thread
/// executes shard 0 itself between the barriers, so `Parallel { workers: 1 }`
/// spawns no threads at all.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool for `num_shards` total shards (`num_shards >= 2`).
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 2, "a pool needs at least one worker thread");
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            start: SenseBarrier::new(num_shards),
            end: SenseBarrier::new(num_shards),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..num_shards)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("df-sim-shard-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn simulation worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Execute `job` across every shard and block until all are done. The
    /// main thread runs shard 0 itself.
    pub fn run(&self, job: PhaseJob) {
        // Safety: workers are parked at the start barrier; nothing reads
        // `job` until we release it below.
        unsafe { *self.shared.job.get() = Some(job) };
        self.shared.start.wait();
        // Always reach the end barrier, even if our own shard panics —
        // otherwise the workers (and the pool's Drop) would deadlock.
        let main_result = catch_unwind(AssertUnwindSafe(|| unsafe { execute_shard(&job, 0) }));
        self.shared.end.wait();
        if let Err(payload) = main_result {
            std::panic::resume_unwind(payload);
        }
        if self.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("a parallel-kernel worker shard panicked");
        }
    }
}

fn worker_loop(shared: &PoolShared, w: usize) {
    loop {
        shared.start.wait();
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let job = unsafe { *shared.job.get() }.expect("job published before the start barrier");
        // Catch panics so the thread stays alive for the end barrier and
        // future phases; the main thread re-raises after the barrier.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { execute_shard(&job, w) }));
        if result.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.end.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Workers are parked at the start barrier (they always return to it
        // after each phase, panicking or not); release them into shutdown.
        self.shared.start.wait();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partition_every_length() {
        for len in 0..50usize {
            for shards in 1..9usize {
                let mut covered = 0;
                let mut prev_hi = 0;
                for w in 0..shards {
                    let (lo, hi) = chunk_bounds(len, shards, w);
                    assert_eq!(lo, prev_hi, "chunks must be contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(prev_hi, len, "chunks must cover the range");
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn chunk_bounds_are_balanced() {
        for len in 0..64usize {
            for shards in 1..9usize {
                let sizes: Vec<usize> = (0..shards)
                    .map(|w| {
                        let (lo, hi) = chunk_bounds(len, shards, w);
                        hi - lo
                    })
                    .collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "len {len} shards {shards}: {sizes:?}");
            }
        }
    }

    #[test]
    fn barrier_synchronises_repeated_generations() {
        let barrier = Arc::new(SenseBarrier::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for round in 0..100usize {
                    counter.fetch_add(1, Ordering::AcqRel);
                    barrier.wait();
                    // after the barrier every participant of this round has
                    // incremented
                    assert!(counter.load(Ordering::Acquire) >= 3 * (round + 1));
                    barrier.wait();
                }
            }));
        }
        for round in 0..100usize {
            counter.fetch_add(1, Ordering::AcqRel);
            barrier.wait();
            assert!(counter.load(Ordering::Acquire) >= 3 * (round + 1));
            barrier.wait();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Acquire), 300);
    }

    #[test]
    fn pool_spawns_and_shuts_down_cleanly() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.handles.len(), 3, "main runs shard 0 itself");
        drop(pool); // must not hang
    }
}
