//! Deterministic fault injection: declarative, timed link, router and node
//! failures attached to a scenario.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s — `LinkDown` /
//! `LinkUp` on a (bidirectional) router-to-router link, `RouterDrain` /
//! `RouterRestore` on a router's traffic sources, and `NodeFail` /
//! `NodeRestore` on a compute node (drain-at-source plus reroute-to-spare).
//! The plan is part of the workload description: it lowers into the
//! simulation kernel as schedule change-points (so the `drain()` idle
//! fast-forward can never skip a fault cycle) and is applied at the *start*
//! of the fault's cycle, before link events are delivered. Plans can be
//! written by hand or generated stochastically — see
//! [`ChurnModel`](crate::churn::ChurnModel), which lowers seeded MTBF/MTTR
//! churn into this same validated representation.
//!
//! # Failure semantics
//!
//! * **`LinkDown`** takes both directions of the link out of service:
//!   * the allocator stops granting the dead output ports, whatever the
//!     routing policy requested; adaptive policies treat the dead minimal
//!     port as infinitely contended and misroute around it, committed
//!     continuations *re-commit* (the failure-aware routing layer — see
//!     `docs/ARCHITECTURE.md`), and packets with no VC-feasible live
//!     escape are discarded as unroutable;
//!   * packets staged in an output buffer behind the dead link are lost
//!     with it (the serialisation buffer dies with the link) and their
//!     consumed downstream credits are ledgered like in-flight drops;
//!   * packets and credit messages **in flight on the link** when it fails
//!     (arrival scheduled while the link is down) are *dropped* and
//!     accounted in the `DroppedOnFault` counters, so phit conservation
//!     stays a checkable equality:
//!     `injected = delivered + in-flight + dropped_on_fault`;
//!   * the credits each dropped phit had consumed upstream are remembered
//!     in a per-link ledger.
//! * **`LinkUp`** restores both directions and returns the ledger credits
//!   to the upstream output ports — the downstream buffer space the dropped
//!   packets had reserved was never used, so after restoration the credit
//!   invariant (`free credits = capacity − downstream occupancy − in-flight
//!   reservations`) is exact again.
//! * **`RouterDrain`** gracefully drains the traffic *sourced* at a router:
//!   its attached nodes stop generating new packets at the fault cycle,
//!   while already-queued packets still inject and flush, and transit
//!   traffic is unaffected. Compose with `LinkDown` events to model harder
//!   router failures. **`RouterRestore`** re-enables generation.
//! * **`NodeFail`** models a compute-node failure with
//!   *drain-at-source + reroute-to-spare* semantics:
//!   * the failed node stops generating new packets (drain at the source;
//!     packets already queued at its NIC still inject and flush);
//!   * traffic *addressed to* the failed node is retargeted at injection
//!     time to the designated `spare` node (the workload's hot standby), so
//!     every packet in the network always has a live ejection path and the
//!     conservation equalities (`injected = delivered + in-flight +
//!     dropped`, in packets and in phits) stay exact — this is how the
//!     terminal-link restriction is lifted without making conservation
//!     undecidable;
//!   * packets already in flight toward the failed node when it fails are
//!     still delivered to its NIC (the drain window of a real failover);
//!   * validation requires the spare to be a *live* node at the fail cycle,
//!     so retarget chains (`a -> b` where `b` later fails to `c`) resolve
//!     by following spares in fail order and can never cycle.
//!
//!   **`NodeRestore`** brings the node back: it resumes generating and new
//!   packets address it directly again.
//!
//! Events fire only within simulated time: if a run (or a drain) ends
//! before an event's cycle, the network finishes in the degraded state —
//! a `LinkUp` that was never reached leaves its link down and its lost
//! credits ledgered, which is exactly what the conservation counters
//! report. Resuming stepping applies the remaining events on schedule.
//!
//! Fault application is main-thread work in every kernel, so fault runs stay
//! **bit-identical across the optimized, legacy and parallel kernels at any
//! worker count** (guarded by `tests/kernel_equivalence.rs`).

use df_model::Cycle;
use df_topology::{GroupId, NodeId, Port, PortClass, PortLayout, PortPeer, RouterId, Topology};
use serde::{Deserialize, Serialize};

/// What a fault event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Take the bidirectional link attached at `(router, port)` out of
    /// service (both directions). `port` must be a local or global port.
    LinkDown {
        /// One endpoint router of the link.
        router: RouterId,
        /// The (local or global) port of that router.
        port: Port,
    },
    /// Restore the bidirectional link attached at `(router, port)` and
    /// return the credits lost to drops on it.
    LinkUp {
        /// One endpoint router of the link.
        router: RouterId,
        /// The (local or global) port of that router.
        port: Port,
    },
    /// Stop traffic generation at the nodes attached to `router` (graceful
    /// drain; queued packets still flush).
    RouterDrain {
        /// The router being drained.
        router: RouterId,
    },
    /// Re-enable traffic generation at the nodes attached to `router`.
    RouterRestore {
        /// The router being restored.
        router: RouterId,
    },
    /// Fail node `node`: it stops generating, and traffic addressed to it
    /// is retargeted to the live `spare` node at injection time
    /// (drain-at-source + reroute-to-spare; see the module docs).
    NodeFail {
        /// The node that fails.
        node: NodeId,
        /// The live node that stands in as the failed node's destination.
        spare: NodeId,
    },
    /// Restore node `node`: it resumes generating and is addressed directly
    /// again.
    NodeRestore {
        /// The node being restored.
        node: NodeId,
    },
}

/// One timed fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at which the fault takes effect (start of the cycle, before
    /// link-event delivery).
    pub at: Cycle,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative list of timed fault events (see the module docs for the
/// exact semantics of each kind).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the healthy-network default).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Append an arbitrary event.
    pub fn push(mut self, at: Cycle, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Append a `LinkDown` at `at` on the link attached at `(router, port)`.
    pub fn link_down(self, at: Cycle, router: RouterId, port: Port) -> Self {
        self.push(at, FaultKind::LinkDown { router, port })
    }

    /// Append a `LinkUp` at `at` on the link attached at `(router, port)`.
    pub fn link_up(self, at: Cycle, router: RouterId, port: Port) -> Self {
        self.push(at, FaultKind::LinkUp { router, port })
    }

    /// Append a `RouterDrain` at `at`.
    pub fn router_drain(self, at: Cycle, router: RouterId) -> Self {
        self.push(at, FaultKind::RouterDrain { router })
    }

    /// Append a `RouterRestore` at `at`.
    pub fn router_restore(self, at: Cycle, router: RouterId) -> Self {
        self.push(at, FaultKind::RouterRestore { router })
    }

    /// Append a `NodeFail` at `at` retargeting `node`'s traffic to `spare`.
    pub fn node_fail(self, at: Cycle, node: NodeId, spare: NodeId) -> Self {
        self.push(at, FaultKind::NodeFail { node, spare })
    }

    /// Append a `NodeRestore` at `at`.
    pub fn node_restore(self, at: Cycle, node: NodeId) -> Self {
        self.push(at, FaultKind::NodeRestore { node })
    }

    /// Append every event of `other` (insertion order preserved per plan) —
    /// used to merge explicit scenario faults with churn-generated ones.
    pub fn merged(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self
    }

    /// The endpoint `(router, port)` of the unique global link connecting
    /// two distinct groups — a convenience for building plans that degrade
    /// specific group pairs.
    pub fn global_link_between(topo: &impl Topology, g1: GroupId, g2: GroupId) -> (RouterId, Port) {
        topo.gateway_to(g1, g2)
    }

    /// The events in plan order (insertion order; lowering sorts them by
    /// cycle with a stable sort, so same-cycle events apply in insertion
    /// order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events sorted by cycle (stable: same-cycle events keep insertion
    /// order) — the form the simulation kernel consumes.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at);
        events
    }

    /// The cycles at which the plan changes the network, sorted and
    /// deduplicated — merged into the kernel's schedule change-points so
    /// idle fast-forwarding can never skip a fault.
    pub fn change_points(&self) -> Vec<Cycle> {
        let mut points: Vec<Cycle> = self.events.iter().map(|e| e.at).collect();
        points.sort_unstable();
        points.dedup();
        points
    }

    /// Validate the plan against a topology:
    ///
    /// * router ids, node ids and ports must exist, and link faults must
    ///   name router-to-router links — a terminal link never fails on its
    ///   own; model node failure as a `NodeFail` event, whose
    ///   drain-at-source + reroute-to-spare semantics keep every packet's
    ///   ejection path live and conservation decidable;
    /// * the per-link event sequence must be consistent: no two events on
    ///   the same link in the same cycle (their order would be
    ///   insertion-dependent), no `LinkUp` for a link that is not down at
    ///   that point in the (cycle-sorted) plan, and no `LinkDown` for a
    ///   link that is already down;
    /// * the per-node event sequence must be consistent: no two events on
    ///   the same node in the same cycle, no `NodeFail` on a node that is
    ///   already failed, no `NodeRestore` on a live node, the spare must be
    ///   a different node, and the spare must be *live* at the fail cycle
    ///   (so retarget chains can never cycle).
    pub fn validate(&self, topo: &impl Topology) -> Result<(), String> {
        let layout = topo.layout();
        let num_routers = topo.num_routers();
        let num_nodes = topo.num_nodes();
        for (i, event) in self.events.iter().enumerate() {
            let check_link = |router: RouterId, port: Port| -> Result<(), String> {
                if router.0 >= num_routers {
                    return Err(format!("fault event {i}: router {router} out of range"));
                }
                if port.0 >= layout.radix() {
                    return Err(format!("fault event {i}: port {port} out of range"));
                }
                if port.class(&layout) == PortClass::Terminal {
                    return Err(format!(
                        "fault event {i}: terminal links cannot fail on their own (router \
                         {router} port {port}) — model node failure as a NodeFail event \
                         (drain-at-source + reroute-to-spare), which keeps every packet's \
                         ejection path live and conservation decidable"
                    ));
                }
                if !matches!(topo.peer(router, port), PortPeer::Router(..)) {
                    return Err(format!(
                        "fault event {i}: router {router} port {port} is not wired"
                    ));
                }
                Ok(())
            };
            match event.kind {
                FaultKind::LinkDown { router, port } | FaultKind::LinkUp { router, port } => {
                    check_link(router, port)?
                }
                FaultKind::RouterDrain { router } | FaultKind::RouterRestore { router } => {
                    if router.0 >= num_routers {
                        return Err(format!("fault event {i}: router {router} out of range"));
                    }
                }
                FaultKind::NodeFail { node, spare } => {
                    if node.0 >= num_nodes {
                        return Err(format!("fault event {i}: node {node} out of range"));
                    }
                    if spare.0 >= num_nodes {
                        return Err(format!("fault event {i}: spare node {spare} out of range"));
                    }
                    if spare == node {
                        return Err(format!(
                            "fault event {i}: node {node} cannot be its own spare"
                        ));
                    }
                }
                FaultKind::NodeRestore { node } => {
                    if node.0 >= num_nodes {
                        return Err(format!("fault event {i}: node {node} out of range"));
                    }
                }
            }
        }
        self.validate_link_sequences(topo)?;
        self.validate_node_sequences()
    }

    /// Walk the cycle-sorted plan and check per-link event consistency (see
    /// [`validate`](Self::validate)). Links are canonicalised to their
    /// lexicographically smaller directed end, so the two endpoint namings
    /// of one bidirectional link collide as intended.
    fn validate_link_sequences(&self, topo: &impl Topology) -> Result<(), String> {
        use std::collections::BTreeMap;
        let canonical = |router: RouterId, port: Port| -> (u32, u32) {
            match topo.peer(router, port) {
                PortPeer::Router(peer, back) => std::cmp::min((router.0, port.0), (peer.0, back.0)),
                _ => (router.0, port.0),
            }
        };
        // per canonical link: (is down, cycle of the last event touching it)
        let mut state: BTreeMap<(u32, u32), (bool, Cycle)> = BTreeMap::new();
        for event in self.sorted_events() {
            let (router, port, down) = match event.kind {
                FaultKind::LinkDown { router, port } => (router, port, true),
                FaultKind::LinkUp { router, port } => (router, port, false),
                _ => continue,
            };
            let key = canonical(router, port);
            match state.get(&key) {
                Some(&(_, last)) if last == event.at => {
                    return Err(format!(
                        "fault plan: two events on the link at router {router} port {port} \
                         in the same cycle {} (order would be insertion-dependent)",
                        event.at
                    ));
                }
                Some(&(true, _)) if down => {
                    return Err(format!(
                        "fault plan: LinkDown at cycle {} on the link at router {router} \
                         port {port}, which is already down",
                        event.at
                    ));
                }
                Some(&(false, _)) | None if !down => {
                    return Err(format!(
                        "fault plan: LinkUp at cycle {} on the link at router {router} \
                         port {port}, which is not down (up-before-down)",
                        event.at
                    ));
                }
                _ => {}
            }
            state.insert(key, (down, event.at));
        }
        Ok(())
    }

    /// Walk the cycle-sorted plan and check per-node event consistency (see
    /// [`validate`](Self::validate)): fail/restore alternation, no same-cycle
    /// double events, and spares live at their fail cycle.
    fn validate_node_sequences(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        // per node: (is failed, cycle of the last event touching it)
        let mut state: BTreeMap<NodeId, (bool, Cycle)> = BTreeMap::new();
        for event in self.sorted_events() {
            let (node, failing) = match event.kind {
                FaultKind::NodeFail { node, .. } => (node, true),
                FaultKind::NodeRestore { node } => (node, false),
                _ => continue,
            };
            match state.get(&node) {
                Some(&(_, last)) if last == event.at => {
                    return Err(format!(
                        "fault plan: two events on node {node} in the same cycle {} \
                         (order would be insertion-dependent)",
                        event.at
                    ));
                }
                Some(&(true, _)) if failing => {
                    return Err(format!(
                        "fault plan: NodeFail at cycle {} on node {node}, which is \
                         already failed",
                        event.at
                    ));
                }
                Some(&(false, _)) | None if !failing => {
                    return Err(format!(
                        "fault plan: NodeRestore at cycle {} on node {node}, which is \
                         not failed (restore-before-fail)",
                        event.at
                    ));
                }
                _ => {}
            }
            if let FaultKind::NodeFail { spare, .. } = event.kind {
                if matches!(state.get(&spare), Some(&(true, _))) {
                    return Err(format!(
                        "fault plan: NodeFail at cycle {} names spare {spare}, which is \
                         itself failed at that point — spares must be live so retarget \
                         chains cannot cycle",
                        event.at
                    ));
                }
            }
            state.insert(node, (failing, event.at));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Dragonfly, DragonflyParams};

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small())
    }

    #[test]
    fn empty_plan_is_the_default() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.change_points().is_empty());
        assert!(plan.validate(&topo()).is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn builder_accumulates_events_in_order() {
        let t = topo();
        let (gw, port) = FaultPlan::global_link_between(&t, GroupId(0), GroupId(4));
        let plan = FaultPlan::new()
            .link_down(150, gw, port)
            .router_drain(200, RouterId(3))
            .link_up(450, gw, port)
            .router_restore(500, RouterId(3));
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.change_points(), vec![150, 200, 450, 500]);
        assert!(plan.validate(&t).is_ok());
        assert_eq!(
            plan.events()[0].kind,
            FaultKind::LinkDown { router: gw, port }
        );
    }

    #[test]
    fn sorted_events_are_stable_within_a_cycle() {
        let t = topo();
        let port = Port::local(t.params(), 0);
        let plan = FaultPlan::new()
            .link_down(300, RouterId(1), port)
            .link_down(100, RouterId(2), port)
            .router_drain(100, RouterId(5));
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].at, 100);
        assert_eq!(
            sorted[0].kind,
            FaultKind::LinkDown {
                router: RouterId(2),
                port
            }
        );
        assert_eq!(
            sorted[1].kind,
            FaultKind::RouterDrain {
                router: RouterId(5)
            }
        );
        assert_eq!(sorted[2].at, 300);
        assert_eq!(plan.change_points(), vec![100, 300]);
    }

    #[test]
    fn validation_rejects_bad_targets() {
        let t = topo();
        // terminal link
        let plan = FaultPlan::new().link_down(10, RouterId(0), Port(0));
        assert!(plan.validate(&t).unwrap_err().contains("terminal"));
        // out-of-range router
        let plan = FaultPlan::new().router_drain(10, RouterId(999));
        assert!(plan.validate(&t).unwrap_err().contains("out of range"));
        // out-of-range port
        let plan = FaultPlan::new().link_up(10, RouterId(0), Port(99));
        assert!(plan.validate(&t).unwrap_err().contains("out of range"));
        // a dangling global port of a partially-populated network
        let partial = Dragonfly::new(DragonflyParams::new(2, 4, 2, 5).unwrap());
        let dangling = partial
            .routers()
            .flat_map(|r| {
                let params = *partial.params();
                (0..params.h).map(move |k| (r, Port::global(&params, k)))
            })
            .find(|(r, p)| {
                partial
                    .global_neighbor(*r, p.class_offset(partial.params()))
                    .is_none()
            })
            .expect("a dangling link exists");
        let plan = FaultPlan::new().link_down(10, dangling.0, dangling.1);
        assert!(plan.validate(&partial).unwrap_err().contains("not wired"));
    }

    #[test]
    fn node_event_validation_enforces_liveness_and_alternation() {
        let t = topo();
        // valid fail -> restore, plus a chain whose spare is live at fail time
        let plan = FaultPlan::new()
            .node_fail(100, NodeId(3), NodeId(4))
            .node_restore(400, NodeId(3))
            .node_fail(500, NodeId(4), NodeId(3));
        assert!(plan.validate(&t).is_ok());
        // out-of-range node / spare
        let plan = FaultPlan::new().node_fail(10, NodeId(999), NodeId(0));
        assert!(plan.validate(&t).unwrap_err().contains("out of range"));
        let plan = FaultPlan::new().node_fail(10, NodeId(0), NodeId(999));
        assert!(plan.validate(&t).unwrap_err().contains("out of range"));
        // self-spare
        let plan = FaultPlan::new().node_fail(10, NodeId(5), NodeId(5));
        assert!(plan.validate(&t).unwrap_err().contains("own spare"));
        // double fail
        let plan = FaultPlan::new()
            .node_fail(10, NodeId(5), NodeId(6))
            .node_fail(20, NodeId(5), NodeId(7));
        assert!(plan.validate(&t).unwrap_err().contains("already failed"));
        // restore-before-fail
        let plan = FaultPlan::new().node_restore(10, NodeId(5));
        assert!(plan
            .validate(&t)
            .unwrap_err()
            .contains("restore-before-fail"));
        // same-cycle double event
        let plan = FaultPlan::new()
            .node_fail(10, NodeId(5), NodeId(6))
            .node_restore(10, NodeId(5));
        assert!(plan.validate(&t).unwrap_err().contains("same cycle"));
        // spare failed at the fail cycle
        let plan = FaultPlan::new()
            .node_fail(10, NodeId(6), NodeId(7))
            .node_fail(20, NodeId(5), NodeId(6));
        assert!(plan
            .validate(&t)
            .unwrap_err()
            .contains("spares must be live"));
        // ... but fine again once the spare is restored
        let plan = FaultPlan::new()
            .node_fail(10, NodeId(6), NodeId(7))
            .node_restore(15, NodeId(6))
            .node_fail(20, NodeId(5), NodeId(6));
        assert!(plan.validate(&t).is_ok());
    }

    #[test]
    fn merged_appends_the_other_plans_events() {
        let t = topo();
        let (gw, port) = FaultPlan::global_link_between(&t, GroupId(1), GroupId(2));
        let explicit = FaultPlan::new().link_down(150, gw, port);
        let churned = FaultPlan::new().node_fail(300, NodeId(9), NodeId(10));
        let merged = explicit.merged(churned);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.change_points(), vec![150, 300]);
        assert!(merged.validate(&t).is_ok());
    }

    #[test]
    fn global_link_between_matches_the_gateway() {
        let t = topo();
        let (gw, port) = FaultPlan::global_link_between(&t, GroupId(2), GroupId(7));
        assert_eq!(t.router_group(gw), GroupId(2));
        assert_eq!(port.class(t.params()), PortClass::Global);
    }
}
