//! Declarative scenarios: composable traffic workloads over time.
//!
//! A [`Scenario`] bundles everything that describes *the workload* of a run —
//! which traffic pattern is active when, at what load, and under which
//! injection process — separately from the machine under test (topology,
//! router microarchitecture, routing mechanism) and from the measurement
//! protocol (warm-up, window). It generalises the hard-coded transient
//! schedules of the paper's Figures 7–9: any number of phases, each a
//! `pattern × load × duration` triple, can be chained.
//!
//! Phases are expressed by *duration* rather than absolute start cycle, so
//! scenarios compose: appending a phase never requires renumbering the
//! existing ones. The last phase may be open-ended (`duration = None`) and
//! runs until the simulation stops.
//!
//! A scenario never *ends* a run — how long to simulate is the experiment's
//! decision, not the workload's. When the last phase is timed, its pattern
//! and load simply persist beyond its nominal end (the lowered
//! [`TrafficSchedule`] is right-open); use
//! [`timed_cycles`](Scenario::timed_cycles) to size the warm-up/measurement
//! windows if the run should stop where the scenario does.
//!
//! ```
//! use df_sim::Scenario;
//! use df_traffic::{InjectionKind, PatternKind};
//!
//! // warm up uniform, hit the network with ADV+1, then relax back
//! let scenario = Scenario::named("un-adv-un")
//!     .injection(InjectionKind::Bursty { mean_on: 50.0, mean_off: 50.0 })
//!     .phase(PatternKind::Uniform, 2_000)
//!     .phase(PatternKind::Adversarial { offset: 1 }, 2_000)
//!     .hold(PatternKind::Uniform);
//! assert_eq!(scenario.switch_points(), vec![2_000, 4_000]);
//! ```

use df_model::Cycle;
use df_topology::{NodeId, Port, RouterId};
use df_traffic::{
    validate_job_disjointness, InjectionKind, JobSpec, PatternKind, PatternPhase, TaskWorkload,
    TrafficSchedule,
};
use serde::{Deserialize, Serialize};

use crate::churn::ChurnModel;
use crate::fault::FaultPlan;

/// One phase of a scenario: a pattern at an (optional) load override for a
/// (possibly open-ended) duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPhase {
    /// Traffic pattern of the phase.
    pub pattern: PatternKind,
    /// Offered-load override in phits/(node·cycle); `None` keeps the
    /// experiment's base load.
    pub load: Option<f64>,
    /// Length of the phase in cycles; `None` means "until the end of the
    /// run" and is only allowed for the final phase.
    pub duration: Option<Cycle>,
}

/// A named, composable traffic workload: an injection process plus an ordered
/// list of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Name used in result tables and golden tests.
    pub name: String,
    /// Injection process shared by every phase.
    pub injection: InjectionKind,
    /// The phases, in order. Never empty once built.
    phases: Vec<ScenarioPhase>,
    /// Timed link/router fault events (empty for healthy-network
    /// scenarios). Cycles are absolute, on the same clock as the phase
    /// durations.
    faults: FaultPlan,
    /// Optional stochastic failure churn, lowered into additional
    /// [`FaultPlan`] events (merged with `faults`) when the scenario is
    /// applied to a configuration. Seeded independently of the traffic
    /// seed, so the same churn model replays identically across loads,
    /// routings and kernels.
    churn: Option<ChurnModel>,
    /// Optional rank-level task workload: when present, the scenario's
    /// nodes execute a collective sequence instead of stochastic injection
    /// (the phases still drive any non-rank background pattern selection,
    /// but rank nodes generate only task traffic).
    workload: Option<TaskWorkload>,
    /// Multi-job traffic: concurrently scheduled collective applications
    /// with node-disjoint placements, layered *over* the stochastic phases
    /// (mutually exclusive with `workload`).
    jobs: Vec<JobSpec>,
}

impl Scenario {
    /// Start an empty scenario; add phases with [`phase`](Self::phase) /
    /// [`phase_at_load`](Self::phase_at_load) and finish with
    /// [`hold`](Self::hold) (or leave the last timed phase as the end).
    pub fn named(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            injection: InjectionKind::Bernoulli,
            phases: Vec::new(),
            faults: FaultPlan::new(),
            churn: None,
            workload: None,
            jobs: Vec::new(),
        }
    }

    /// A single-phase steady-state scenario, named after the pattern.
    pub fn steady(pattern: PatternKind) -> Self {
        Scenario::named(pattern.label()).hold(pattern)
    }

    /// The paper's transient scenario: `first` for `switch_after` cycles,
    /// then `second` forever (same load throughout).
    pub fn transient(first: PatternKind, second: PatternKind, switch_after: Cycle) -> Self {
        Scenario::named(format!("{}->{}", first.label(), second.label()))
            .phase(first, switch_after)
            .hold(second)
    }

    /// Set the injection process (Bernoulli by default).
    pub fn injection(mut self, injection: InjectionKind) -> Self {
        self.injection = injection;
        self
    }

    /// Append a timed phase at the experiment's base load.
    pub fn phase(self, pattern: PatternKind, duration: Cycle) -> Self {
        self.push(pattern, None, Some(duration))
    }

    /// Append a timed phase with a load override.
    pub fn phase_at_load(self, pattern: PatternKind, load: f64, duration: Cycle) -> Self {
        self.push(pattern, Some(load), Some(duration))
    }

    /// Append an open-ended final phase at the experiment's base load.
    pub fn hold(self, pattern: PatternKind) -> Self {
        self.push(pattern, None, None)
    }

    /// Append an open-ended final phase with a load override.
    pub fn hold_at_load(self, pattern: PatternKind, load: f64) -> Self {
        self.push(pattern, Some(load), None)
    }

    /// Attach a complete fault plan (replaces any previously attached
    /// events).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Append a `LinkDown` fault at absolute cycle `at` on the link attached
    /// at `(router, port)`.
    pub fn link_down(mut self, at: Cycle, router: RouterId, port: Port) -> Self {
        self.faults = std::mem::take(&mut self.faults).link_down(at, router, port);
        self
    }

    /// Append a `LinkUp` fault at absolute cycle `at`.
    pub fn link_up(mut self, at: Cycle, router: RouterId, port: Port) -> Self {
        self.faults = std::mem::take(&mut self.faults).link_up(at, router, port);
        self
    }

    /// Append a `RouterDrain` fault at absolute cycle `at`.
    pub fn router_drain(mut self, at: Cycle, router: RouterId) -> Self {
        self.faults = std::mem::take(&mut self.faults).router_drain(at, router);
        self
    }

    /// Append a `RouterRestore` fault at absolute cycle `at`.
    pub fn router_restore(mut self, at: Cycle, router: RouterId) -> Self {
        self.faults = std::mem::take(&mut self.faults).router_restore(at, router);
        self
    }

    /// Append a `NodeFail` fault at absolute cycle `at`: `node` stops
    /// generating and new packets addressed to it retarget to `spare` at
    /// injection time.
    pub fn node_fail(mut self, at: Cycle, node: NodeId, spare: NodeId) -> Self {
        self.faults = std::mem::take(&mut self.faults).node_fail(at, node, spare);
        self
    }

    /// Append a `NodeRestore` fault at absolute cycle `at`.
    pub fn node_restore(mut self, at: Cycle, node: NodeId) -> Self {
        self.faults = std::mem::take(&mut self.faults).node_restore(at, node);
        self
    }

    /// Attach a stochastic churn model; its seeded MTBF/MTTR processes are
    /// lowered into concrete fault events (merged with any explicitly
    /// attached ones) when the scenario is applied to a configuration.
    pub fn churn(mut self, churn: ChurnModel) -> Self {
        self.churn = Some(churn);
        self
    }

    /// The attached churn model, if any.
    pub fn churn_model(&self) -> Option<&ChurnModel> {
        self.churn.as_ref()
    }

    /// Attach a rank-level task workload (executed instead of stochastic
    /// injection when the scenario is applied to a configuration).
    pub fn task_workload(mut self, workload: TaskWorkload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// The attached task workload, if any.
    pub fn workload(&self) -> Option<&TaskWorkload> {
        self.workload.as_ref()
    }

    /// Append one job to the scenario's job set (multi-job traffic over the
    /// stochastic phases).
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// The attached job set (empty for single-workload or packet-level
    /// scenarios).
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The attached fault plan (empty for healthy-network scenarios). Does
    /// *not* include churn-generated events — those are lowered at
    /// configuration-build time against a concrete topology.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    fn push(mut self, pattern: PatternKind, load: Option<f64>, duration: Option<Cycle>) -> Self {
        assert!(
            self.phases.last().is_none_or(|p| p.duration.is_some()),
            "no phase can follow an open-ended phase"
        );
        if let Some(d) = duration {
            assert!(d > 0, "a timed phase needs a positive duration");
        }
        self.phases.push(ScenarioPhase {
            pattern,
            load,
            duration,
        });
        self
    }

    /// The phases, in order.
    pub fn phases(&self) -> &[ScenarioPhase] {
        &self.phases
    }

    /// Absolute cycles at which the pattern changes (start of every phase
    /// after the first).
    pub fn switch_points(&self) -> Vec<Cycle> {
        let mut points = Vec::new();
        let mut at = 0;
        for phase in self.phases.iter() {
            let Some(d) = phase.duration else { break };
            at += d;
            points.push(at);
        }
        // an open-ended last phase starts at the last accumulated point; a
        // timed last phase simply ends the scenario there, which is not a
        // switch
        if self.phases.last().is_some_and(|p| p.duration.is_some()) {
            points.pop();
        }
        points
    }

    /// Total length of the timed phases; `None` if the scenario ends with an
    /// open-ended phase.
    ///
    /// This is advisory: simulating past it keeps the last phase's pattern
    /// and load active (see the module docs). Size the experiment's
    /// warm-up/measurement windows from this value when the run should end
    /// with the scenario.
    pub fn timed_cycles(&self) -> Option<Cycle> {
        self.phases
            .iter()
            .map(|p| p.duration)
            .sum::<Option<Cycle>>()
    }

    /// Lower the scenario to the piecewise-constant [`TrafficSchedule`] the
    /// simulator consumes (durations become absolute start cycles). The
    /// schedule is right-open: the final phase — timed or not — stays active
    /// for as long as the simulation runs.
    ///
    /// # Panics
    /// Panics if the scenario has no phases.
    pub fn schedule(&self) -> TrafficSchedule {
        assert!(
            !self.phases.is_empty(),
            "a scenario needs at least one phase"
        );
        let mut start = 0;
        let mut phases = Vec::with_capacity(self.phases.len());
        for phase in self.phases.iter() {
            phases.push(PatternPhase {
                start,
                pattern: phase.pattern,
                load: phase.load,
            });
            start += phase.duration.unwrap_or(0);
        }
        TrafficSchedule::from_phases(phases)
    }

    /// Validate every phase pattern against a topology, plus the injection
    /// process.
    pub fn validate(&self, topo: &impl df_topology::Topology) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("scenario '{}' has no phases", self.name));
        }
        self.injection.validate()?;
        self.faults
            .validate(topo)
            .map_err(|e| format!("scenario '{}': {e}", self.name))?;
        if let Some(churn) = &self.churn {
            churn
                .validate()
                .map_err(|e| format!("scenario '{}': {e}", self.name))?;
        }
        if let Some(workload) = &self.workload {
            let groups = topo.num_groups();
            let nodes_per_group = topo.nodes_per_group();
            workload
                .validate(groups, nodes_per_group)
                .map_err(|e| format!("scenario '{}': workload: {e}", self.name))?;
        }
        if !self.jobs.is_empty() {
            if self.workload.is_some() {
                return Err(format!(
                    "scenario '{}': a task workload and a job set are mutually exclusive",
                    self.name
                ));
            }
            let groups = topo.num_groups();
            let nodes_per_group = topo.nodes_per_group();
            for (i, job) in self.jobs.iter().enumerate() {
                job.validate(groups, nodes_per_group)
                    .map_err(|e| format!("scenario '{}': job #{i}: {e}", self.name))?;
            }
            validate_job_disjointness(&self.jobs, groups, nodes_per_group)
                .map_err(|e| format!("scenario '{}': {e}", self.name))?;
        }
        for (i, phase) in self.phases.iter().enumerate() {
            phase
                .pattern
                .validate(topo)
                .map_err(|e| format!("scenario '{}' phase {i}: {e}", self.name))?;
            if let Some(load) = phase.load {
                if !(0.0..=1.0).contains(&load) {
                    return Err(format!(
                        "scenario '{}' phase {i}: load must be in [0,1], got {load}",
                        self.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_scenario_is_one_open_phase() {
        let s = Scenario::steady(PatternKind::Uniform);
        assert_eq!(s.name, "UN");
        assert_eq!(s.phases().len(), 1);
        assert!(s.switch_points().is_empty());
        assert!(s.timed_cycles().is_none());
        let schedule = s.schedule();
        assert_eq!(schedule.pattern_at(0), PatternKind::Uniform);
        assert!(schedule.change_points().is_empty());
    }

    #[test]
    fn transient_scenario_matches_switch_at() {
        let s = Scenario::transient(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            2_000,
        );
        assert_eq!(s.name, "UN->ADV+1");
        assert_eq!(s.switch_points(), vec![2_000]);
        let schedule = s.schedule();
        assert_eq!(
            schedule,
            TrafficSchedule::switch_at(
                PatternKind::Uniform,
                PatternKind::Adversarial { offset: 1 },
                2_000
            )
        );
    }

    #[test]
    fn durations_accumulate_into_start_cycles() {
        let s = Scenario::named("three")
            .phase(PatternKind::Uniform, 1_000)
            .phase_at_load(PatternKind::Adversarial { offset: 1 }, 0.4, 500)
            .hold(PatternKind::Uniform);
        assert_eq!(s.switch_points(), vec![1_000, 1_500]);
        assert_eq!(s.timed_cycles(), None);
        let schedule = s.schedule();
        assert_eq!(schedule.phases().len(), 3);
        assert_eq!(schedule.phases()[1].start, 1_000);
        assert_eq!(schedule.phases()[1].load, Some(0.4));
        assert_eq!(schedule.phases()[2].start, 1_500);
    }

    #[test]
    fn timed_final_phase_has_a_total_length() {
        let s = Scenario::named("finite")
            .phase(PatternKind::Uniform, 300)
            .phase(PatternKind::Adversarial { offset: 1 }, 200);
        assert_eq!(s.timed_cycles(), Some(500));
        // the end of the last phase is not a pattern switch
        assert_eq!(s.switch_points(), vec![300]);
        // the lowered schedule is right-open: simulating past timed_cycles
        // keeps the final pattern active (sizing the run is the
        // experiment's job, not the workload's)
        let schedule = s.schedule();
        assert_eq!(
            schedule.pattern_at(10_000),
            PatternKind::Adversarial { offset: 1 }
        );
    }

    #[test]
    #[should_panic(expected = "open-ended")]
    fn phases_after_an_open_phase_are_rejected() {
        let _ = Scenario::named("bad")
            .hold(PatternKind::Uniform)
            .phase(PatternKind::Adversarial { offset: 1 }, 100);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_phases_are_rejected() {
        let _ = Scenario::named("bad").phase(PatternKind::Uniform, 0);
    }

    #[test]
    fn fault_events_attach_and_validate() {
        let topo = df_topology::Dragonfly::new(df_topology::DragonflyParams::small());
        let (gw, port) =
            FaultPlan::global_link_between(&topo, df_topology::GroupId(0), df_topology::GroupId(3));
        let s = Scenario::named("UN-linkloss")
            .hold(PatternKind::Uniform)
            .link_down(150, gw, port)
            .link_up(450, gw, port)
            .router_drain(200, RouterId(2));
        assert_eq!(s.fault_plan().len(), 3);
        assert_eq!(s.fault_plan().change_points(), vec![150, 200, 450]);
        assert!(s.validate(&topo).is_ok());
        // healthy scenarios carry an empty plan
        assert!(Scenario::steady(PatternKind::Uniform)
            .fault_plan()
            .is_empty());
        // a terminal-link fault is rejected by validation
        let bad =
            Scenario::named("bad")
                .hold(PatternKind::Uniform)
                .link_down(10, RouterId(0), Port(0));
        assert!(bad.validate(&topo).is_err());
    }

    #[test]
    fn node_events_and_churn_attach_to_scenarios() {
        use crate::churn::ChurnRate;
        let topo = df_topology::Dragonfly::new(df_topology::DragonflyParams::small());
        let s = Scenario::named("UN-nodeloss")
            .hold(PatternKind::Uniform)
            .node_fail(100, df_topology::NodeId(5), df_topology::NodeId(6))
            .node_restore(400, df_topology::NodeId(5))
            .churn(ChurnModel::new(9, 0, 1_000).global_links(ChurnRate::new(5_000.0, 300.0)));
        assert_eq!(s.fault_plan().len(), 2);
        assert!(s.churn_model().is_some());
        assert!(s.validate(&topo).is_ok());
        // an invalid churn model fails scenario validation
        let bad = Scenario::named("bad-churn")
            .hold(PatternKind::Uniform)
            .churn(ChurnModel::new(9, 0, 0).routers(ChurnRate::new(1_000.0, 100.0)));
        assert!(bad.validate(&topo).is_err());
        // healthy scenarios carry no churn
        assert!(Scenario::steady(PatternKind::Uniform)
            .churn_model()
            .is_none());
    }

    #[test]
    fn validation_flags_bad_phase_parameters() {
        let topo = df_topology::Dragonfly::new(df_topology::DragonflyParams::small());
        assert!(Scenario::named("empty").validate(&topo).is_err());
        let bad_load = Scenario::named("overload").hold_at_load(PatternKind::Uniform, 1.5);
        assert!(bad_load.validate(&topo).is_err());
        let bad_pattern = Scenario::named("hot").hold(PatternKind::Hotspot {
            hotspots: 0,
            fraction: 0.5,
        });
        assert!(bad_pattern.validate(&topo).is_err());
        let good = Scenario::transient(PatternKind::Uniform, PatternKind::BitReversal, 100)
            .injection(InjectionKind::Bursty {
                mean_on: 20.0,
                mean_off: 20.0,
            });
        assert!(good.validate(&topo).is_ok());
    }
}
