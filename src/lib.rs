//! # contention-dragonfly
//!
//! A production-quality Rust reproduction of *"Contention-based Nonminimal
//! Adaptive Routing in High-radix Networks"* (Fuentes et al., IEEE IPDPS
//! 2015): a cycle-driven Dragonfly network simulator, the contention-counter
//! misrouting trigger (Base / Hybrid / ECtN) together with the MIN, Valiant,
//! PiggyBacking and OLM baselines, synthetic traffic generators, and the full
//! experiment harness that regenerates every figure of the paper's
//! evaluation.
//!
//! This crate is a thin facade that re-exports the workspace sub-crates under
//! stable module names. Most users only need:
//!
//! ```
//! use contention_dragonfly::prelude::*;
//!
//! let config = SimulationConfig::builder()
//!     .topology(DragonflyParams::small())
//!     .network(NetworkConfig::fast_test())
//!     .routing(RoutingKind::Base)
//!     .pattern(PatternKind::Adversarial { offset: 1 })
//!     .offered_load(0.2)
//!     .warmup_cycles(200)
//!     .measurement_cycles(300)
//!     .seed(1)
//!     .build()
//!     .expect("valid configuration");
//!
//! let report = SteadyStateExperiment::new(config).run();
//! println!(
//!     "latency {:.1} cycles, accepted load {:.3} phits/node/cycle",
//!     report.avg_packet_latency,
//!     report.accepted_load
//! );
//! assert!(report.delivered_packets > 0);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-versus-measured record.

/// Dragonfly topology model (re-export of `df-topology`).
pub use df_topology as topology;

/// Shared model types: packets, virtual channels, configuration (re-export of
/// `df-model`).
pub use df_model as model;

/// Simulation engine utilities: RNG, statistics, time series (re-export of
/// `df-engine`).
pub use df_engine as engine;

/// Synthetic traffic generation (re-export of `df-traffic`).
pub use df_traffic as traffic;

/// Router microarchitecture: buffers, credits, allocator, contention counters
/// (re-export of `df-router`).
pub use df_router as router;

/// Routing algorithms and misrouting triggers — the paper's contribution
/// (re-export of `df-routing`).
pub use df_routing as routing;

/// Cycle-driven network simulator and experiment harness (re-export of
/// `df-sim`).
pub use df_sim as sim;

/// One-stop imports for applications and examples.
pub mod prelude;
