//! One-stop imports for applications, examples and integration tests.
//!
//! ```
//! use contention_dragonfly::prelude::*;
//! let topo = Dragonfly::new(DragonflyParams::small());
//! assert_eq!(topo.num_groups(), 9);
//! ```

pub use df_engine::{DeterministicRng, Histogram, RunningStats, Table, TimeSeries};
pub use df_model::{
    BufferConfig, Cycle, LatencyConfig, NetworkConfig, Packet, PacketId, RoutingState, VcConfig,
    VcId,
};
pub use df_router::{ContentionCounters, EctnState, PbState, Router};
pub use df_routing::{
    Commitment, Decision, DecisionKind, RoutingAlgorithm, RoutingConfig, RoutingKind,
};
pub use df_sim::{
    cell_seed, config_fingerprint, load_sweep, matrix_table, run_interference, run_job_set,
    run_matrix, run_matrix_budgeted, run_sweep, run_sweep_service, run_task_workload,
    split_thread_budget, ChurnModel, ChurnRate, ConfigError, FaultEvent, FaultKind, FaultPlan,
    InterferenceReport, JobReport, JobSetReport, JobsEngine, KernelMode, MatrixCell, MatrixKey,
    Network, RunnerOptions, Scenario, ScenarioMatrix, ScenarioPhase, SimulationConfig,
    SteadyStateExperiment, SteadyStateReport, StreamingRunOptions, StreamingTelemetry,
    SweepOutcome, TaskEngine, TaskReport, TransientExperiment, TransientReport, WindowStats,
};
pub use df_topology::{
    AnyTopology, Dragonfly, DragonflyParams, GatewayLiveness, GroupId, LinkState, Megafly,
    MegaflyParams, NodeId, Port, PortClass, PortLayout, PortPeer, RadixLayout, RouterId, Topology,
    TopologyKind, TopologyParams,
};
pub use df_traffic::{
    validate_job_disjointness, AllReduceAlgorithm, BernoulliInjector, CollectiveKind,
    InjectionKind, Injector, JobPlacement, JobSpec, PatternKind, RankPlacement, TaskWorkload,
    TrafficPattern, TrafficSchedule,
};
