//! Smoke coverage for the paper's full Table I instance.
//!
//! `DragonflyParams::paper_table1()` and `Scale::paper()` describe the
//! 16,512-node network every headline result of the paper is measured on,
//! but until this suite nothing ever *built* it — a regression (an
//! overflowing radix computation, a mis-sized buffer, a wiring error that
//! only appears at 129 groups) would have gone unnoticed until someone
//! started a multi-hour run. The construction checks below are cheap and
//! always on; the short simulation smokes are `--ignored` (tens of seconds
//! of wall clock) and run with
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```

use contention_dragonfly::prelude::*;

/// Always-on: the full topology must construct with consistent wiring-level
/// invariants, and the named experiment scale must agree with it.
#[test]
fn paper_table1_topology_constructs_consistently() {
    let params = DragonflyParams::paper_table1();
    assert_eq!(params.num_nodes(), 16_512);
    assert_eq!(params.num_routers(), 2_064);
    assert_eq!(params.num_groups(), 129);
    assert_eq!(params.radix(), 31);
    assert!(params.is_fully_populated());

    let topo = Dragonfly::new(params);
    assert_eq!(topo.num_routers(), 2_064);
    // spot-check global wiring symmetry at the far corner of the id space
    let last = RouterId(topo.num_routers() - 1);
    for k in 0..params.h {
        let (peer, pport) = topo.global_neighbor(last, k).unwrap();
        let (back, _) = topo
            .global_neighbor(peer, pport.class_offset(topo.params()))
            .unwrap();
        assert_eq!(back, last, "global link {k} of {last} is not symmetric");
    }

    // a full-radix router constructs with the Table I buffer configuration
    let router = Router::new(RouterId(0), topo, NetworkConfig::paper_table1());
    assert_eq!(router.num_ports(), 31);

    let scale = df_bench::Scale::paper();
    assert_eq!(scale.topology, params);
    assert_eq!(scale.seeds, 10);
    assert_eq!(scale.measure, 15_000);
}

fn paper_config(kernel: KernelMode, cycles: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .topology(DragonflyParams::paper_table1())
        .network(NetworkConfig::paper_table1())
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .offered_load(0.1)
        .warmup_cycles(0)
        .measurement_cycles(cycles)
        .seed(1)
        .kernel(kernel)
        .build()
        .expect("the paper-scale configuration must validate")
}

/// `--ignored`: the 16,512-node network runs a short window under the
/// parallel kernel and actually delivers traffic.
#[test]
#[ignore = "paper-scale smoke (tens of seconds); run with --ignored"]
fn paper_scale_runs_and_delivers_under_the_parallel_kernel() {
    let mut net = Network::new(paper_config(KernelMode::Parallel { workers: 0 }, 300));
    net.metrics_mut().start_measurement(0);
    net.run_cycles(300);
    assert_eq!(net.topology().num_routers(), 2_064);
    assert!(
        net.metrics().delivered_packets_total() > 10_000,
        "a 16,512-node network at 10% load must deliver plenty in 300 cycles, got {}",
        net.metrics().delivered_packets_total()
    );
    assert!(!net.stalled(200), "no deadlock at paper scale");
    let summary = net.metrics().window_summary();
    assert!(summary.avg_hops <= 6.0);
    assert!(summary.avg_packet_latency > 0.0);
}

/// `--ignored`: a short parallel-vs-optimized bit-identity check at the full
/// paper scale — the determinism contract does not thin out with size.
#[test]
#[ignore = "paper-scale cross-kernel check (tens of seconds); run with --ignored"]
fn paper_scale_parallel_matches_optimized() {
    let run = |kernel: KernelMode| {
        let mut net = Network::new(paper_config(kernel, 120));
        net.metrics_mut().start_measurement(0);
        net.run_cycles(120);
        let s = net.metrics().window_summary();
        (
            s.delivered_packets,
            s.avg_packet_latency.to_bits(),
            net.in_flight(),
            net.pending_events(),
        )
    };
    let optimized = run(KernelMode::Optimized);
    let parallel = run(KernelMode::Parallel { workers: 4 });
    assert_eq!(
        parallel, optimized,
        "parallel kernel diverged from optimized at paper scale"
    );
}
