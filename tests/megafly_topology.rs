//! Property suite for the Megafly / Dragonfly+ instance of the [`Topology`]
//! trait.
//!
//! The Dragonfly wiring is pinned by Table-I checks in `tests/paper_scale.rs`
//! and the in-crate unit tests; this file gives the second topology family
//! the same level of structural scrutiny: bidirectional link symmetry,
//! spine/leaf bipartiteness, and — the strongest check — the closed-form
//! minimal-hop oracle validated against a breadth-first search of the
//! actual router graph on every instance small enough to enumerate.

use contention_dragonfly::prelude::*;
use std::collections::VecDeque;

fn instances() -> Vec<Megafly> {
    vec![
        Megafly::new(MegaflyParams::tiny()),
        Megafly::new(MegaflyParams::small()),
        // a deliberately under-populated network: fewer groups than the
        // palmtree maximum, so some global ports are unwired
        Megafly::new(MegaflyParams::new(2, 3, 3, 2, 4).expect("valid partial instance")),
    ]
}

#[test]
fn megafly_sizes_match_the_closed_forms() {
    let small = MegaflyParams::small();
    assert_eq!(small.num_groups(), 9);
    assert_eq!(small.num_nodes(), 72);
    assert_eq!(small.num_routers(), 72);
    let medium = MegaflyParams::medium();
    assert_eq!(medium.num_nodes(), 1_056);
    assert_eq!(medium.num_groups(), 33);
    for topo in instances() {
        let p = *topo.params();
        assert_eq!(topo.num_routers(), (p.l + p.s) * p.groups);
        assert_eq!(topo.num_nodes(), p.p * p.l * p.groups);
        assert_eq!(topo.global_links_per_group(), p.s * p.h);
        assert_eq!(topo.nodes_per_group(), p.p * p.l);
    }
}

#[test]
fn megafly_groups_are_bipartite_spine_leaf_blocks() {
    for topo in instances() {
        let layout = topo.layout();
        for router in topo.routers() {
            let leaf = topo.is_leaf(router);
            // complete bipartite local wiring: every local port is wired,
            // and always to the opposite side of the block
            for k in 0..layout.locals() {
                let port = Port::local(&layout, k);
                let PortPeer::Router(peer, back) = topo.peer(router, port) else {
                    panic!("local port {k} of {router} is unwired");
                };
                assert_eq!(
                    topo.router_group(peer),
                    topo.router_group(router),
                    "local link leaves the group"
                );
                assert_ne!(
                    topo.is_leaf(peer),
                    leaf,
                    "local link {k} of {router} connects two routers of the same side"
                );
                // bidirectional: the peer's return port leads back
                let PortPeer::Router(ret, _) = topo.peer(peer, back) else {
                    panic!("return port of ({router}, {port}) is unwired");
                };
                assert_eq!(ret, router, "local link {k} of {router} is not symmetric");
            }
            // terminals on leaves only, globals on spines only
            if leaf {
                assert!(
                    !topo.router_node_span(router).is_empty(),
                    "leaf {router} has no nodes"
                );
                assert_eq!(topo.own_globals(router), 0, "leaf {router} owns globals");
                for k in 0..layout.globals() {
                    assert!(
                        matches!(
                            topo.peer(router, Port::global(&layout, k)),
                            PortPeer::Unconnected
                        ),
                        "global port {k} of leaf {router} is wired"
                    );
                }
            } else {
                assert!(
                    topo.router_node_span(router).is_empty(),
                    "spine {router} has nodes"
                );
                assert_eq!(topo.own_globals(router), topo.params().h);
                for k in 0..layout.terminals() {
                    assert!(
                        matches!(topo.peer(router, Port::terminal(k)), PortPeer::Unconnected),
                        "terminal port {k} of spine {router} is wired"
                    );
                }
            }
        }
    }
}

#[test]
fn megafly_global_links_are_bidirectional_and_cover_every_group_pair() {
    for topo in instances() {
        let layout = topo.layout();
        for router in topo.routers() {
            for k in 0..topo.own_globals(router) {
                let Some((peer, pport)) = topo.global_neighbor(router, k) else {
                    continue; // unwired in a partially-populated network
                };
                assert_ne!(
                    topo.router_group(peer),
                    topo.router_group(router),
                    "global link {k} of {router} stays inside the group"
                );
                let (back, _) = topo
                    .global_neighbor(peer, pport.class_offset(&layout))
                    .expect("the reverse direction is wired");
                assert_eq!(back, router, "global link {k} of {router} is not symmetric");
            }
        }
        // fully-populated instances connect every ordered group pair
        if topo.params().is_fully_populated() {
            for g1 in topo.groups() {
                for g2 in topo.groups() {
                    if g1 == g2 {
                        continue;
                    }
                    let (gw, port) = topo.gateway_to(g1, g2);
                    assert_eq!(topo.router_group(gw), g1);
                    let PortPeer::Router(entry, _) = topo.peer(gw, port) else {
                        panic!("gateway {g1:?}->{g2:?} is unwired");
                    };
                    assert_eq!(topo.router_group(entry), g2);
                }
            }
        }
    }
}

/// BFS over the actual wired router graph: the ground truth the closed-form
/// minimal-hop oracle must reproduce.
fn bfs_distances(topo: &Megafly, from: RouterId) -> Vec<u32> {
    let layout = topo.layout();
    let mut dist = vec![u32::MAX; topo.num_routers() as usize];
    dist[from.index()] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(r) = queue.pop_front() {
        for port in Port::all(&layout) {
            if port.class(&layout) == PortClass::Terminal {
                continue;
            }
            if let PortPeer::Router(peer, _) = topo.peer(r, port) {
                if dist[peer.index()] == u32::MAX {
                    dist[peer.index()] = dist[r.index()] + 1;
                    queue.push_back(peer);
                }
            }
        }
    }
    dist
}

#[test]
fn megafly_minimal_hop_oracle_matches_breadth_first_search() {
    // `minimal_hops_to_router` measures the minimal-*class* path: at most
    // one global hop, through the unique palmtree link between the group
    // pair. Between two *leaves* — where every packet originates and
    // terminates — that class is also graph-minimal, so the oracle must
    // equal BFS exactly. Between spines the class can cost more than the
    // unrestricted graph distance (a spine-to-spine pair may be closer via
    // two globals than via the 2-local detour to its group's gateway), so
    // there the oracle may only ever over-count, never under-count.
    for topo in instances() {
        if !topo.params().is_fully_populated() {
            // minimal paths via the palmtree gateway assume the full group
            // complement, exactly like the Dragonfly oracle
            continue;
        }
        for src in topo.routers() {
            let dist = bfs_distances(&topo, src);
            for dst in topo.routers() {
                let got =
                    contention_dragonfly::routing::minimal::minimal_hops_to_router(&topo, src, dst);
                if topo.is_leaf(src) && topo.is_leaf(dst) {
                    assert_eq!(
                        got,
                        dist[dst.index()],
                        "leaf-to-leaf minimal-hop oracle disagrees with BFS for {src} -> {dst}"
                    );
                } else {
                    assert!(
                        got >= dist[dst.index()],
                        "oracle under-counts the graph distance for {src} -> {dst}: \
                         {got} < {}",
                        dist[dst.index()]
                    );
                }
            }
        }
    }
}

#[test]
fn megafly_local_minimal_steps_descend_the_bfs_metric() {
    // `local_hop_toward` must make strict progress: stepping the advertised
    // port from any router toward any same-group target reaches it within
    // the oracle's hop count
    for topo in instances() {
        for group in topo.groups() {
            for src in topo.routers_in_group(group) {
                for dst in topo.routers_in_group(group) {
                    let mut at = src;
                    let mut hops = 0;
                    while at != dst {
                        let port = topo.local_hop_toward(at, dst);
                        let PortPeer::Router(next, _) = topo.peer(at, port) else {
                            panic!("local step of {at} toward {dst} is unwired");
                        };
                        at = next;
                        hops += 1;
                        assert!(hops <= 2, "local walk {src} -> {dst} does not terminate");
                    }
                    assert_eq!(
                        hops,
                        topo.local_hops_between(src, dst),
                        "local hop count oracle disagrees with the walk {src} -> {dst}"
                    );
                }
            }
        }
    }
}
