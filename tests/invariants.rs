//! Cross-crate invariant tests: conservation laws that must hold for *any*
//! topology, routing mechanism, traffic pattern and seed.
//!
//! The property-style tests sweep a deterministic grid of small
//! configurations (routing × pattern × load × seed, and exhaustive `(p, a,
//! h)` topology ranges) and check, after the network drains:
//!
//! * no packet is lost or duplicated (everything generated is delivered),
//! * every contention counter and every ECtN partial counter returns to zero,
//! * every credit counter returns to the downstream buffer capacity,
//! * delivered packets respect the hop bounds of the misrouting policy.

use contention_dragonfly::prelude::*;

/// Run a short simulation under `kernel` and drain it, returning the
/// network for inspection.
#[allow(clippy::too_many_arguments)]
fn run_and_drain_kernel(
    params: DragonflyParams,
    routing: RoutingKind,
    pattern: PatternKind,
    load: f64,
    cycles: u64,
    seed: u64,
    kernel: KernelMode,
) -> Network {
    let config = SimulationConfig::builder()
        .topology(params)
        .network(NetworkConfig::fast_test())
        .routing(routing)
        .pattern(pattern)
        .offered_load(load)
        .warmup_cycles(0)
        .measurement_cycles(cycles)
        .seed(seed)
        .kernel(kernel)
        .build()
        .expect("valid configuration");
    let mut net = Network::new(config);
    net.metrics_mut().start_measurement(0);
    net.run_cycles(cycles);
    let drained = net.drain(100_000);
    assert!(drained, "network must drain after traffic stops");
    net
}

/// Run a short simulation (environment-default kernel) and drain it.
fn run_and_drain(
    params: DragonflyParams,
    routing: RoutingKind,
    pattern: PatternKind,
    load: f64,
    cycles: u64,
    seed: u64,
) -> Network {
    run_and_drain_kernel(
        params,
        routing,
        pattern,
        load,
        cycles,
        seed,
        KernelMode::from_env(),
    )
}

fn check_conservation(net: &Network) {
    // nothing in flight, all counters at zero
    assert_eq!(net.in_flight(), 0);
    assert_eq!(
        net.total_contention(),
        0,
        "contention counters must drain to zero"
    );
    let topo = net.topology();
    let params = topo.params();
    for router_id in topo.routers() {
        let router = net.router(router_id);
        // ECtN partial counters drained
        assert!(
            router.ectn().partial_all_zero(),
            "router {router_id} has non-zero ECtN partial counters after drain"
        );
        // every credit returned
        for port in Port::all(params) {
            let output = router.output(port);
            for vc in 0..output.num_downstream_vcs() {
                assert_eq!(
                    output.credits(VcId(vc as u8)),
                    output.credit_capacity(VcId(vc as u8)),
                    "router {router_id} port {port} vc {vc}: credits not fully returned"
                );
            }
            assert_eq!(
                output.buffer_occupancy_phits(),
                0,
                "router {router_id} port {port}: output buffer not empty"
            );
        }
        // every input VC empty
        for port in Port::all(params) {
            let input = router.input(port);
            for vc in 0..input.num_vcs() {
                assert!(
                    input.vc(vc).is_empty(),
                    "router {router_id} {port} vc{vc} not empty"
                );
            }
        }
    }
}

#[test]
fn conservation_after_drain_for_every_routing() {
    for routing in RoutingKind::ALL {
        let net = run_and_drain(
            DragonflyParams::small(),
            routing,
            PatternKind::Adversarial { offset: 1 },
            0.3,
            1_500,
            11,
        );
        check_conservation(&net);
        let generated = net.metrics().generated_phits_total / 8;
        assert_eq!(
            net.metrics().delivered_packets_total(),
            generated,
            "{routing:?}: every generated packet must eventually be delivered"
        );
    }
}

#[test]
fn hop_counts_stay_within_the_policy_bounds() {
    // the worst allowed path is l g l l g l = 6 hops
    for routing in [RoutingKind::Valiant, RoutingKind::Base, RoutingKind::Ectn] {
        let config = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(0.3)
            .warmup_cycles(500)
            .measurement_cycles(1_500)
            .seed(13)
            .build()
            .unwrap();
        let report = SteadyStateExperiment::new(config).run();
        assert!(report.delivered_packets > 50);
        assert!(
            report.avg_hops <= 6.0,
            "{routing:?}: average hops {:.2} exceeds the 6-hop worst case",
            report.avg_hops
        );
    }
}

#[test]
fn sampled_small_simulations_conserve_packets() {
    // Deterministic grid standing in for the former proptest sampling:
    // every (routing mechanism × pattern family) pair, with the load and
    // seed varied across the grid.
    let loads = [0.08, 0.2, 0.35, 0.45];
    let patterns = [
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.5,
        },
    ];
    let mut case = 0usize;
    for routing in RoutingKind::ALL {
        for pattern in patterns {
            let load = loads[case % loads.len()];
            let seed = 100 + 37 * case as u64;
            case += 1;
            let net = run_and_drain(DragonflyParams::small(), routing, pattern, load, 600, seed);
            check_conservation(&net);
            let generated = net.metrics().generated_phits_total / 8;
            assert_eq!(
                net.metrics().delivered_packets_total(),
                generated,
                "{routing:?} {pattern:?} load {load} seed {seed}: packets lost or duplicated"
            );
        }
    }
}

#[test]
fn all_small_topologies_have_consistent_wiring() {
    // Exhaustive over the ranges the proptest version sampled from.
    for p in 1u32..4 {
        for a in 2u32..7 {
            for h in 1u32..4 {
                let params = DragonflyParams::canonical(p, a, h).unwrap();
                let topo = Dragonfly::new(params);
                // global wiring symmetry for every router
                for r in topo.routers() {
                    for k in 0..h {
                        let (peer, pport) = topo.global_neighbor(r, k).unwrap();
                        let (back, bport) = topo
                            .global_neighbor(peer, pport.class_offset(topo.params()))
                            .unwrap();
                        assert_eq!(back, r);
                        assert_eq!(bport.class_offset(topo.params()), k);
                    }
                }
                // every pair of groups connected by exactly one link
                for g1 in topo.groups() {
                    for g2 in topo.groups() {
                        if g1 != g2 {
                            let (gw, port) = topo.gateway_to(g1, g2);
                            assert_eq!(topo.router_group(gw), g1);
                            let (peer, _) = topo
                                .global_neighbor(gw, port.class_offset(topo.params()))
                                .unwrap();
                            assert_eq!(topo.router_group(peer), g2);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_kernel_conserves_phits_credits_and_packets_at_mid_size_scale() {
    // The conservation laws under the sharded kernel on the 1,056-node
    // medium topology: no packet lost or duplicated, every phit accounted,
    // every credit returned, every counter drained — with the work actually
    // split across a 3-shard pool (groups and routers do not divide evenly).
    for routing in [RoutingKind::Base, RoutingKind::Ectn] {
        let net = run_and_drain_kernel(
            DragonflyParams::medium(),
            routing,
            PatternKind::Adversarial { offset: 1 },
            0.25,
            250,
            17,
            KernelMode::Parallel { workers: 3 },
        );
        check_conservation(&net);
        let generated = net.metrics().generated_phits_total / 8;
        assert_eq!(
            net.metrics().delivered_packets_total(),
            generated,
            "{routing:?}: packets lost or duplicated under the parallel kernel"
        );
        assert!(generated > 500, "the mid-size run must carry real traffic");
    }
}

#[test]
fn parallel_kernel_invariants_hold_for_every_routing_mechanism() {
    // Every mechanism (including PB's every-cycle dissemination and ECtN's
    // periodic broadcast) through the sharded control-plane phases.
    for routing in RoutingKind::ALL {
        let net = run_and_drain_kernel(
            DragonflyParams::small(),
            routing,
            PatternKind::Adversarial { offset: 1 },
            0.3,
            600,
            23,
            KernelMode::Parallel { workers: 4 },
        );
        check_conservation(&net);
        let generated = net.metrics().generated_phits_total / 8;
        assert_eq!(
            net.metrics().delivered_packets_total(),
            generated,
            "{routing:?}: conservation violated under the parallel kernel"
        );
    }
}

#[test]
fn latency_histograms_are_identical_across_one_to_eight_workers() {
    // Stress the worker-count-independence contract on the *full* latency
    // distribution, not just summary statistics: the same congested
    // configuration on 1..=8 workers must produce bin-for-bin identical
    // histograms (and identical totals) to the sequential optimized kernel.
    let run = |kernel: KernelMode| {
        let config = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Base)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(0.35)
            .warmup_cycles(100)
            .measurement_cycles(500)
            .seed(29)
            .kernel(kernel)
            .build()
            .expect("valid configuration");
        let mut net = Network::new(config);
        net.run_cycles(100);
        let start = net.cycle();
        net.metrics_mut().start_measurement(start);
        net.run_cycles(500);
        assert!(net.drain(100_000));
        (
            net.metrics().latency_histogram().bins().to_vec(),
            net.metrics().latency_histogram().count(),
            net.metrics().delivered_packets_total(),
        )
    };
    let reference = run(KernelMode::Optimized);
    assert!(reference.1 > 0, "the reference run must record latencies");
    for workers in 1..=8usize {
        let parallel = run(KernelMode::Parallel { workers });
        assert_eq!(
            parallel.1, reference.1,
            "parallel({workers}): histogram totals diverged"
        );
        assert_eq!(
            parallel.2, reference.2,
            "parallel({workers}): delivered totals diverged"
        );
        for (bin, (p, r)) in parallel.0.iter().zip(reference.0.iter()).enumerate() {
            assert_eq!(
                p, r,
                "parallel({workers}): histogram bin {bin} diverged from the optimized kernel"
            );
        }
        assert_eq!(parallel.0.len(), reference.0.len());
    }
}

#[test]
fn minimal_paths_are_valid_and_short_on_all_small_topologies() {
    for p in 1u32..3 {
        for a in 2u32..6 {
            for h in 1u32..4 {
                let params = DragonflyParams::canonical(p, a, h).unwrap();
                let topo = Dragonfly::new(params);
                for s in 0..topo.num_routers() {
                    for d in 0..topo.num_routers() {
                        let src = RouterId(s);
                        let dst = RouterId(d);
                        let path = df_topology::path::minimal_path(&topo, src, dst);
                        assert!(path.len() <= 3, "p={p} a={a} h={h} {src}->{dst}");
                        assert!(
                            df_topology::path::validate_path(&topo, src, dst, &path),
                            "p={p} a={a} h={h} {src}->{dst}: invalid minimal path"
                        );
                    }
                }
            }
        }
    }
}
