//! Cross-crate invariant tests: conservation laws that must hold for *any*
//! topology, routing mechanism, traffic pattern and seed.
//!
//! The property-style tests sweep a deterministic grid of small
//! configurations (routing × pattern × load × seed, and exhaustive `(p, a,
//! h)` topology ranges) and check, after the network drains:
//!
//! * no packet is lost or duplicated (everything generated is delivered),
//! * every contention counter and every ECtN partial counter returns to zero,
//! * every credit counter returns to the downstream buffer capacity,
//! * delivered packets respect the hop bounds of the misrouting policy.

use contention_dragonfly::prelude::*;

/// Run a short simulation and drain it, returning the network for
/// inspection.
fn run_and_drain(
    params: DragonflyParams,
    routing: RoutingKind,
    pattern: PatternKind,
    load: f64,
    cycles: u64,
    seed: u64,
) -> Network {
    let config = SimulationConfig::builder()
        .topology(params)
        .network(NetworkConfig::fast_test())
        .routing(routing)
        .pattern(pattern)
        .offered_load(load)
        .warmup_cycles(0)
        .measurement_cycles(cycles)
        .seed(seed)
        .build()
        .expect("valid configuration");
    let mut net = Network::new(config);
    net.metrics_mut().start_measurement(0);
    net.run_cycles(cycles);
    let drained = net.drain(100_000);
    assert!(drained, "network must drain after traffic stops");
    net
}

fn check_conservation(net: &Network) {
    // nothing in flight, all counters at zero
    assert_eq!(net.in_flight(), 0);
    assert_eq!(net.total_contention(), 0, "contention counters must drain to zero");
    let topo = net.topology();
    let params = topo.params();
    for router_id in topo.routers() {
        let router = net.router(router_id);
        // ECtN partial counters drained
        assert!(
            router.ectn().partial_all_zero(),
            "router {router_id} has non-zero ECtN partial counters after drain"
        );
        // every credit returned
        for port in Port::all(params) {
            let output = router.output(port);
            for vc in 0..output.num_downstream_vcs() {
                assert_eq!(
                    output.credits(VcId(vc as u8)),
                    output.credit_capacity(VcId(vc as u8)),
                    "router {router_id} port {port} vc {vc}: credits not fully returned"
                );
            }
            assert_eq!(
                output.buffer_occupancy_phits(),
                0,
                "router {router_id} port {port}: output buffer not empty"
            );
        }
        // every input VC empty
        for port in Port::all(params) {
            let input = router.input(port);
            for vc in 0..input.num_vcs() {
                assert!(input.vc(vc).is_empty(), "router {router_id} {port} vc{vc} not empty");
            }
        }
    }
}

#[test]
fn conservation_after_drain_for_every_routing() {
    for routing in RoutingKind::ALL {
        let net = run_and_drain(
            DragonflyParams::small(),
            routing,
            PatternKind::Adversarial { offset: 1 },
            0.3,
            1_500,
            11,
        );
        check_conservation(&net);
        let generated = net.metrics().generated_phits_total / 8;
        assert_eq!(
            net.metrics().delivered_packets_total(),
            generated,
            "{routing:?}: every generated packet must eventually be delivered"
        );
    }
}

#[test]
fn hop_counts_stay_within_the_policy_bounds() {
    // the worst allowed path is l g l l g l = 6 hops
    for routing in [RoutingKind::Valiant, RoutingKind::Base, RoutingKind::Ectn] {
        let config = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(0.3)
            .warmup_cycles(500)
            .measurement_cycles(1_500)
            .seed(13)
            .build()
            .unwrap();
        let report = SteadyStateExperiment::new(config).run();
        assert!(report.delivered_packets > 50);
        assert!(
            report.avg_hops <= 6.0,
            "{routing:?}: average hops {:.2} exceeds the 6-hop worst case",
            report.avg_hops
        );
    }
}

#[test]
fn sampled_small_simulations_conserve_packets() {
    // Deterministic grid standing in for the former proptest sampling:
    // every (routing mechanism × pattern family) pair, with the load and
    // seed varied across the grid.
    let loads = [0.08, 0.2, 0.35, 0.45];
    let patterns = [
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.5,
        },
    ];
    let mut case = 0usize;
    for routing in RoutingKind::ALL {
        for pattern in patterns {
            let load = loads[case % loads.len()];
            let seed = 100 + 37 * case as u64;
            case += 1;
            let net = run_and_drain(
                DragonflyParams::small(),
                routing,
                pattern,
                load,
                600,
                seed,
            );
            check_conservation(&net);
            let generated = net.metrics().generated_phits_total / 8;
            assert_eq!(
                net.metrics().delivered_packets_total(),
                generated,
                "{routing:?} {pattern:?} load {load} seed {seed}: packets lost or duplicated"
            );
        }
    }
}

#[test]
fn all_small_topologies_have_consistent_wiring() {
    // Exhaustive over the ranges the proptest version sampled from.
    for p in 1u32..4 {
        for a in 2u32..7 {
            for h in 1u32..4 {
                let params = DragonflyParams::canonical(p, a, h).unwrap();
                let topo = Dragonfly::new(params);
                // global wiring symmetry for every router
                for r in topo.routers() {
                    for k in 0..h {
                        let (peer, pport) = topo.global_neighbor(r, k).unwrap();
                        let (back, bport) = topo
                            .global_neighbor(peer, pport.class_offset(topo.params()))
                            .unwrap();
                        assert_eq!(back, r);
                        assert_eq!(bport.class_offset(topo.params()), k);
                    }
                }
                // every pair of groups connected by exactly one link
                for g1 in topo.groups() {
                    for g2 in topo.groups() {
                        if g1 != g2 {
                            let (gw, port) = topo.gateway_to(g1, g2);
                            assert_eq!(topo.router_group(gw), g1);
                            let (peer, _) = topo
                                .global_neighbor(gw, port.class_offset(topo.params()))
                                .unwrap();
                            assert_eq!(topo.router_group(peer), g2);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn minimal_paths_are_valid_and_short_on_all_small_topologies() {
    for p in 1u32..3 {
        for a in 2u32..6 {
            for h in 1u32..4 {
                let params = DragonflyParams::canonical(p, a, h).unwrap();
                let topo = Dragonfly::new(params);
                for s in 0..topo.num_routers() {
                    for d in 0..topo.num_routers() {
                        let src = RouterId(s);
                        let dst = RouterId(d);
                        let path = df_topology::path::minimal_path(&topo, src, dst);
                        assert!(path.len() <= 3, "p={p} a={a} h={h} {src}->{dst}");
                        assert!(
                            df_topology::path::validate_path(&topo, src, dst, &path),
                            "p={p} a={a} h={h} {src}->{dst}: invalid minimal path"
                        );
                    }
                }
            }
        }
    }
}
