//! Churn-subsystem suite: seeded MTBF/MTTR fault generation, node-failure
//! semantics (drain-at-source + reroute-to-spare), and the hop-delayed
//! link-state flooding that disseminates both.
//!
//! The headline property: under ECtN's 100-cycle broadcast cadence, every
//! router's gateway-liveness view lags the simulator's ground truth by
//! **exactly** `(1 + live-hop-distance) × cadence` cycles — the flood moves
//! one live group-hop per exchange, no faster (views are only installed at
//! exchanges) and no slower (per-entry sequence numbers make merges
//! conflict-free) — verified against a BFS oracle over seeded random fault
//! masks that mix link cuts and node failures.

use contention_dragonfly::prelude::*;
use df_sim::FaultPlan;

#[path = "common/golden_corpus.rs"]
#[allow(dead_code)] // only the churn slice of the shared corpus is used here
mod golden_corpus;

use golden_corpus::{base_builder, churn_fingerprint, churn_routings, churn_scenarios};

// -------------------------------------------------------------------------
// 1. churn runs are bit-identical across every kernel
// -------------------------------------------------------------------------

#[test]
fn churn_corpus_is_bit_identical_across_all_three_kernels() {
    // ChurnModel lowering happens at config-build time and fault application
    // plus flooding run on the main thread in every kernel, so a churn run's
    // full fingerprint — drops, retargets, strandings, final cycle, latency
    // bits — must be identical under the optimized, legacy and parallel
    // kernels at several worker counts.
    for scenario in churn_scenarios() {
        for routing in churn_routings() {
            let run = |kernel: KernelMode| {
                let cfg = base_builder()
                    .routing(routing)
                    .scenario(&scenario)
                    .kernel(kernel)
                    .build()
                    .expect("valid configuration");
                churn_fingerprint(cfg)
            };
            let reference = run(KernelMode::Optimized);
            assert_eq!(
                run(KernelMode::Legacy),
                reference,
                "{}/{}: legacy kernel diverged on the churn trajectory",
                scenario.name,
                routing.label()
            );
            for workers in [1usize, 2, 4] {
                assert_eq!(
                    run(KernelMode::Parallel { workers }),
                    reference,
                    "{}/{}: parallel({workers}) diverged on the churn trajectory",
                    scenario.name,
                    routing.label()
                );
            }
        }
    }
}

#[test]
fn churn_corpus_drains_to_zero_in_flight_for_every_mechanism() {
    // The PR-5 re-commit rule originally covered only the commitment paths
    // shared by the adaptive mechanisms; PB's source-routed minimal
    // continuations could still stall forever on links that stayed down
    // through the drain window (9 and 45 packets stranded at the 20k-cycle
    // drain bound in the pinned corpus). With the PB re-commit/discard
    // path in place, every mechanism must drain the churn corpus
    // completely: zero in-flight packets well before the bound, with exact
    // packet + phit conservation (asserted inside `churn_fingerprint`).
    for scenario in churn_scenarios() {
        for routing in churn_routings() {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .expect("valid configuration");
            let drain_bound = cfg.warmup_cycles + cfg.measurement_cycles + 20_000;
            let (_, _, _, in_flight, final_cycle, _) = churn_fingerprint(cfg);
            assert_eq!(
                in_flight,
                0,
                "{}/{}: packets stranded at the drain bound",
                scenario.name,
                routing.label()
            );
            assert!(
                final_cycle < drain_bound,
                "{}/{}: the drain must terminate before the bound, not at it \
                 (final cycle {final_cycle}, bound {drain_bound})",
                scenario.name,
                routing.label()
            );
        }
    }
}

#[test]
fn churn_corpus_cells_see_node_failures_and_retargets() {
    // the acceptance bar demands the pinned churn scenarios actually
    // exercise node-failure semantics, not just link churn
    for scenario in churn_scenarios() {
        let churn = scenario
            .churn_model()
            .expect("churn scenarios carry a model");
        let topo = Dragonfly::new(DragonflyParams::small());
        let plan = churn.generate(&topo);
        let node_fails = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeFail { .. }))
            .count();
        assert!(
            node_fails >= 1,
            "{}: the lowered plan must contain at least one NodeFail, got {node_fails}",
            scenario.name
        );
        let cfg = base_builder()
            .routing(RoutingKind::Ectn)
            .scenario(&scenario)
            .build()
            .unwrap();
        let (_, _, retargeted, _, _, _) = churn_fingerprint(cfg);
        assert!(
            retargeted > 0,
            "{}: packets addressed to failed nodes must retarget to spares",
            scenario.name
        );
    }
}

// -------------------------------------------------------------------------
// 2. the staleness bound: one live group-hop per exchange, exactly
// -------------------------------------------------------------------------

/// BFS distances over the *live* group graph: edges are the inter-group
/// links that are up in `truth` (an entry's flood path never uses a dead
/// link — the exchange it rides is skipped).
fn live_group_distances(topo: &Dragonfly, truth: &GatewayLiveness, from: GroupId) -> Vec<u32> {
    let n = topo.num_groups();
    let mut dist = vec![u32::MAX; n as usize];
    dist[from.0 as usize] = 0;
    let mut frontier = vec![from];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &g in &frontier {
            for h in 0..n {
                if h == g.0 || dist[h as usize] != u32::MAX {
                    continue;
                }
                let j_gh = topo.group_link_to(g, GroupId(h));
                let j_hg = topo.group_link_to(GroupId(h), g);
                // both directions' marks describe the same physical link,
                // and the flood merges only over links the truth holds up
                if truth.link_up(g, j_gh) && truth.link_up(GroupId(h), j_hg) {
                    dist[h as usize] = dist[g.0 as usize] + 1;
                    next.push(GroupId(h));
                }
            }
        }
        frontier = next;
    }
    dist
}

/// One entry of a fault mask: which group owns the down-mark and a closure
/// checking whether a view has adopted it.
enum MaskEntry {
    Link { owner: GroupId, j: u32 },
    Node { owner: GroupId, node: NodeId },
}

impl MaskEntry {
    fn marked_down(&self, view: &GatewayLiveness) -> bool {
        match *self {
            MaskEntry::Link { owner, j } => !view.link_up(owner, j),
            MaskEntry::Node { node, .. } => !view.node_up(node),
        }
    }

    fn owner(&self) -> GroupId {
        match *self {
            MaskEntry::Link { owner, .. } | MaskEntry::Node { owner, .. } => owner,
        }
    }
}

#[test]
fn liveness_views_lag_truth_by_exactly_hop_distance_times_cadence() {
    // Seeded random masks of global-link cuts plus node failures, all fired
    // at cycle 150 under ECtN (exchange cadence 100, exchanges at 200, 300,
    // …). For every mask entry owned by group `g` and every observer group
    // `G`, the installed view of `G`'s routers must adopt the down-mark at
    // exchange `1 + dist(g, G)` — not one exchange earlier, not one later —
    // where `dist` is BFS distance in the post-fault live group graph.
    let topo = Dragonfly::new(DragonflyParams::small());
    let params = *topo.params();
    let num_nodes = topo.num_nodes();
    let mut rng = DeterministicRng::new(0xC4_52);
    for trial in 0..12u32 {
        // ---- build a valid random mask: 1..=4 global links, 0..=2 nodes
        let mut plan = FaultPlan::new();
        let mut cut_links: Vec<(RouterId, Port)> = Vec::new();
        let cuts = 1 + rng.below(4) as usize;
        while cut_links.len() < cuts {
            let r = RouterId(rng.below(topo.num_routers() as u64) as u32);
            let k = rng.below(params.h as u64) as u32;
            let port = Port::global(&params, k);
            let Some((peer, back)) = topo.global_neighbor(r, k) else {
                continue;
            };
            let canonical = if (peer.0, back.0) < (r.0, port.0) {
                (peer, back)
            } else {
                (r, port)
            };
            if cut_links.contains(&canonical) {
                continue;
            }
            cut_links.push(canonical);
            plan = plan.link_down(150, canonical.0, canonical.1);
        }
        let mut failed_nodes: Vec<NodeId> = Vec::new();
        for _ in 0..rng.below(3) {
            let node = NodeId(rng.below(num_nodes as u64) as u32);
            let spare = NodeId((node.0 + 1) % num_nodes);
            if failed_nodes.contains(&node) || failed_nodes.contains(&spare) {
                continue;
            }
            failed_nodes.push(node);
            plan = plan.node_fail(150, node, spare);
        }
        assert_eq!(plan.validate(&topo), Ok(()), "trial {trial}: mask invalid");

        // ---- the oracle: owner group and live-graph distances per entry
        let cfg = base_builder()
            .routing(RoutingKind::Ectn)
            .pattern(PatternKind::Uniform)
            .offered_load(0.0)
            .faults(plan)
            .build()
            .unwrap();
        let mut net = Network::new(cfg);
        net.run_cycles(160); // the mask has fired; no exchange since
        let truth = net.linkview_truth().clone();
        let mut entries: Vec<MaskEntry> = Vec::new();
        for &(r, port) in &cut_links {
            // both incident groups own a directed entry for the cut link
            let g = topo.router_group(r);
            let j = topo.global_link_index(r, port.class_offset(&params));
            assert!(!truth.link_up(g, j), "trial {trial}: truth lost the cut");
            entries.push(MaskEntry::Link { owner: g, j });
            if let df_topology::PortPeer::Router(peer, back) = topo.peer(r, port) {
                let gp = topo.router_group(peer);
                let jp = topo.global_link_index(peer, back.class_offset(&params));
                entries.push(MaskEntry::Link { owner: gp, j: jp });
            }
        }
        for &node in &failed_nodes {
            let owner = topo.router_group(topo.node_router(node));
            entries.push(MaskEntry::Node { owner, node });
        }
        let distances: Vec<Vec<u32>> = (0..topo.num_groups())
            .map(|g| live_group_distances(&topo, &truth, GroupId(g)))
            .collect();

        // ---- step exchange by exchange and compare against the oracle
        let max_dist = entries
            .iter()
            .flat_map(|e| distances[e.owner().0 as usize].iter().copied())
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        for exchange in 0..=(1 + max_dist) {
            // exchange k happens at cycle 200 + (k-1)*100; net is at
            // 160 + 100*(k already run), so advance to just past it
            if exchange > 0 {
                let target = 200 + (exchange as u64 - 1) * 100 + 1;
                net.run_cycles(target - net.cycle());
            }
            for g in 0..topo.num_groups() {
                let observer = GroupId(g);
                let probe = topo.routers_in_group(observer).next().unwrap();
                let view = net.router(probe).link_view();
                for entry in &entries {
                    let d = distances[entry.owner().0 as usize][g as usize];
                    let expect_known = d != u32::MAX && exchange > d;
                    assert_eq!(
                        entry.marked_down(view),
                        expect_known,
                        "trial {trial}, exchange {exchange}, group {g}: entry owned by \
                         {} at live distance {d} must be known iff {exchange} >= 1 + {d}",
                        entry.owner()
                    );
                }
            }
        }
        // after the bound every reachable router's marks equal the truth
        for r in topo.routers() {
            assert!(
                net.router(r).link_view().same_marks(net.linkview_truth()),
                "trial {trial}: router {r} still stale past the staleness bound"
            );
        }
    }
}

// -------------------------------------------------------------------------
// 3. node-failure semantics: drain-at-source + reroute-to-spare
// -------------------------------------------------------------------------

#[test]
fn node_failure_drains_at_source_and_retargets_to_the_spare() {
    // node 5 fails at 100 with node 6 as spare: traffic addressed to 5
    // retargets to 6 at injection time, node 5 stops generating, and the
    // run keeps exact packet + phit conservation with nothing dropped
    // (ejection paths stay live — a NodeFail never kills a link)
    let scenario = Scenario::named("UN-nodefail")
        .hold(PatternKind::Uniform)
        .node_fail(100, NodeId(5), NodeId(6))
        .node_restore(450, NodeId(5));
    let cfg = base_builder()
        .routing(RoutingKind::Ectn)
        .scenario(&scenario)
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.run_cycles(200);
    assert!(net.node_failed(NodeId(5)), "the failure applied");
    assert!(!net.node_failed(NodeId(6)), "the spare is live");
    net.run_cycles(300); // past the restore at 450
    assert!(!net.node_failed(NodeId(5)), "the restore applied");
    assert!(
        net.drain(20_000),
        "a node failure must never strand packets"
    );
    assert!(
        net.metrics().retargeted_packets() > 0,
        "uniform traffic must have addressed the failed node"
    );
    assert_eq!(
        net.metrics().dropped_on_fault_packets(),
        0,
        "a pure node failure drops nothing: sources drain, spares absorb"
    );
    assert_eq!(
        net.injected_packets_total(),
        net.metrics().delivered_packets_total() + net.in_flight(),
        "exact packet conservation"
    );
    assert_eq!(
        net.injected_phits_total(),
        net.metrics().delivered_phits_total() + net.in_flight_phits(),
        "exact phit conservation"
    );
}

#[test]
fn retarget_chains_follow_spares_of_spares() {
    // 5 fails onto 6, then 6 fails onto 7: traffic to 5 must end at 7
    // (the injection-time walk follows the spare chain), and the chain
    // cannot cycle because validation requires every spare live at its
    // fail cycle
    let scenario = Scenario::named("UN-chain")
        .hold(PatternKind::Uniform)
        .node_fail(100, NodeId(5), NodeId(6))
        .node_fail(200, NodeId(6), NodeId(7));
    let cfg = base_builder()
        .routing(RoutingKind::Base)
        .scenario(&scenario)
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.run_cycles(600);
    assert!(net.node_failed(NodeId(5)));
    assert!(net.node_failed(NodeId(6)));
    assert!(!net.node_failed(NodeId(7)));
    assert!(net.drain(20_000));
    assert!(net.metrics().retargeted_packets() > 0);
    assert_eq!(
        net.injected_packets_total(),
        net.metrics().delivered_packets_total() + net.in_flight()
    );
}

#[test]
fn node_failures_flood_like_link_entries() {
    // a NodeFail's down-mark floods through the same per-group views on
    // the same cadence: the owning group knows at the first exchange, a
    // remote group one exchange later (all group links live, distance 1)
    let node = NodeId(5); // attached to router 2, group 0
    let scenario = Scenario::named("UN-nodeflood")
        .hold(PatternKind::Uniform)
        .node_fail(150, node, NodeId(6));
    let cfg = base_builder()
        .routing(RoutingKind::Ectn)
        .scenario(&scenario)
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    let topo = *net.topology();
    let owner_probe = RouterId(3); // group 0
    let remote_probe = RouterId(22); // group 5
    assert_eq!(topo.router_group(topo.node_router(node)), GroupId(0));
    net.run_cycles(200);
    assert!(net.router(owner_probe).link_view().node_up(node));
    net.run_cycles(1); // the exchange at 200
    assert!(
        !net.router(owner_probe).link_view().node_up(node),
        "the owning group learns the node failure at the first exchange"
    );
    assert!(
        net.router(remote_probe).link_view().node_up(node),
        "a remote group lags one exchange behind"
    );
    net.run_cycles(100); // the exchange at 300
    assert!(!net.router(remote_probe).link_view().node_up(node));
}

// -------------------------------------------------------------------------
// 4. churn end-state: unrepaired failures persist past the horizon
// -------------------------------------------------------------------------

#[test]
fn churn_leaves_the_network_degraded_when_repairs_fall_past_the_horizon() {
    // an MTTR far longer than the horizon means failures stay unrepaired:
    // the lowered plan ends with at least one un-restored failure, and the
    // truth still marks it down at the end of the run
    let churn = ChurnModel::new(11, 0, 2_000).global_links(ChurnRate::new(600.0, 1_000_000.0));
    let topo = Dragonfly::new(DragonflyParams::small());
    let plan = churn.generate(&topo);
    let downs = plan
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
        .count();
    let ups = plan
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::LinkUp { .. }))
        .count();
    assert!(
        downs > 0,
        "a 600-cycle MTBF over 72 links must cut something"
    );
    assert!(
        ups < downs,
        "with MTTR ≫ horizon most repairs fall past the horizon ({ups} ups vs {downs} downs)"
    );
    let cfg = base_builder()
        .routing(RoutingKind::Ectn)
        .pattern(PatternKind::Uniform)
        .offered_load(0.05)
        .churn(churn)
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.run_cycles(2_100);
    assert!(
        net.linkview_truth().num_down() > 0,
        "the degraded end state persists"
    );
}
