//! Determinism regression tests guarding the simulation-kernel
//! optimizations (time-wheel event queue, activity gating, allocation-free
//! hot loop).
//!
//! Three layers of protection:
//!
//! 1. **Repeatability** — two runs of the same `SimulationConfig` + seed
//!    produce identical delivered-packet counts, latency histograms and
//!    final cycle.
//! 2. **Kernel equivalence** — the optimized kernel produces *bit-for-bit*
//!    the same metrics as the legacy binary-heap/full-scan kernel across
//!    routing mechanisms, patterns and loads, including a full drain.
//! 3. **Golden pin** — one configuration's summary is pinned to literal
//!    values, so a change in any RNG stream, event ordering or allocator
//!    tie-break turns up as a diff in review rather than silently shifting
//!    every future result.

use contention_dragonfly::prelude::*;

fn config(
    kernel: KernelMode,
    routing: RoutingKind,
    pattern: PatternKind,
    load: f64,
    seed: u64,
) -> SimulationConfig {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(routing)
        .pattern(pattern)
        .offered_load(load)
        .warmup_cycles(200)
        .measurement_cycles(600)
        .seed(seed)
        .kernel(kernel)
        .build()
        .expect("valid configuration")
}

/// Everything that must match between two equivalent runs.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    delivered_window: u64,
    delivered_total: u64,
    generated_phits: u64,
    final_cycle: u64,
    in_flight: u64,
    latency_bits: u64,
    hops_bits: u64,
    p99_bits: u64,
    misroute_global_bits: u64,
    histogram_bins: Vec<u64>,
    drained: bool,
}

fn run_fingerprint(cfg: SimulationConfig) -> Fingerprint {
    let mut net = Network::new(cfg.clone());
    net.run_cycles(cfg.warmup_cycles);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(cfg.measurement_cycles);
    let drained = net.drain(100_000);
    let summary = net.metrics().window_summary();
    Fingerprint {
        delivered_window: summary.delivered_packets,
        delivered_total: net.metrics().delivered_packets_total(),
        generated_phits: net.metrics().generated_phits_total,
        final_cycle: net.cycle(),
        in_flight: net.in_flight(),
        latency_bits: summary.avg_packet_latency.to_bits(),
        hops_bits: summary.avg_hops.to_bits(),
        p99_bits: summary.p99_latency.to_bits(),
        misroute_global_bits: summary.global_misroute_fraction.to_bits(),
        histogram_bins: net.metrics().latency_histogram().bins().to_vec(),
        drained,
    }
}

#[test]
fn same_seed_same_fingerprint() {
    let a = run_fingerprint(config(
        KernelMode::Optimized,
        RoutingKind::Base,
        PatternKind::Uniform,
        0.25,
        42,
    ));
    let b = run_fingerprint(config(
        KernelMode::Optimized,
        RoutingKind::Base,
        PatternKind::Uniform,
        0.25,
        42,
    ));
    assert_eq!(a, b, "identical config + seed must reproduce exactly");
    assert!(a.drained);
}

#[test]
fn different_seed_different_fingerprint() {
    let a = run_fingerprint(config(
        KernelMode::Optimized,
        RoutingKind::Base,
        PatternKind::Uniform,
        0.25,
        1,
    ));
    let b = run_fingerprint(config(
        KernelMode::Optimized,
        RoutingKind::Base,
        PatternKind::Uniform,
        0.25,
        2,
    ));
    assert_ne!(a, b, "different seeds must explore different trajectories");
}

#[test]
fn optimized_kernel_matches_legacy_kernel_bit_for_bit() {
    // The heap→wheel swap and the activity gate must not change a single
    // event ordering: cross-check every routing mechanism under both a
    // benign and an adversarial pattern, at a quiet and a saturating load.
    for routing in RoutingKind::ALL {
        for (pattern, load) in [
            (PatternKind::Uniform, 0.1),
            (PatternKind::Adversarial { offset: 1 }, 0.35),
        ] {
            let fast = run_fingerprint(config(KernelMode::Optimized, routing, pattern, load, 7));
            let slow = run_fingerprint(config(KernelMode::Legacy, routing, pattern, load, 7));
            assert_eq!(
                fast, slow,
                "{routing:?} under {pattern:?} at load {load}: kernels diverge"
            );
        }
    }
}

#[test]
fn kernels_match_on_transient_schedules() {
    // Phase switches exercise the drain fast-forward guard (the clock must
    // not jump over a traffic change) and mid-run load changes.
    let run = |kernel: KernelMode| {
        let schedule = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            400,
        );
        let cfg = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Ectn)
            .schedule(schedule)
            .offered_load(0.25)
            .warmup_cycles(400)
            .measurement_cycles(400)
            .seed(3)
            .kernel(kernel)
            .build()
            .unwrap();
        run_fingerprint(cfg)
    };
    assert_eq!(run(KernelMode::Optimized), run(KernelMode::Legacy));
}

#[test]
fn kernels_match_on_new_patterns() {
    // The scenario subsystem's destination maps (permutation-style), the
    // hotspot weight split and the group-local mix must not perturb event
    // ordering between kernels.
    for routing in [RoutingKind::Olm, RoutingKind::Base, RoutingKind::Ectn] {
        for pattern in [
            PatternKind::Permutation { seed: 17 },
            PatternKind::Hotspot {
                hotspots: 4,
                fraction: 0.5,
            },
            PatternKind::BitComplement,
            PatternKind::BitReversal,
            PatternKind::GroupLocal {
                local_fraction: 0.6,
            },
        ] {
            let fast = run_fingerprint(config(KernelMode::Optimized, routing, pattern, 0.25, 13));
            let slow = run_fingerprint(config(KernelMode::Legacy, routing, pattern, 0.25, 13));
            assert_eq!(fast, slow, "{routing:?} under {pattern:?}: kernels diverge");
        }
    }
}

fn injector_config(kernel: KernelMode, injection: InjectionKind, seed: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Ectn)
        .schedule(TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            400,
        ))
        .injection(injection)
        .offered_load(0.25)
        .warmup_cycles(400)
        .measurement_cycles(400)
        .seed(seed)
        .kernel(kernel)
        .build()
        .expect("valid configuration")
}

#[test]
fn bursty_and_ramp_injection_rerun_identically_and_match_across_kernels() {
    // Rerun identity plus optimized-vs-legacy equality for the new injection
    // processes under a UN→ADV+1 phase change — the combination that
    // exercises the drain fast-forward guard, mid-run load changes and the
    // injectors' internal Markov/ramp state at once.
    for injection in [
        InjectionKind::Bursty {
            mean_on: 40.0,
            mean_off: 60.0,
        },
        InjectionKind::Ramp {
            start_fraction: 0.2,
            ramp_cycles: 500,
        },
    ] {
        let a = run_fingerprint(injector_config(KernelMode::Optimized, injection, 21));
        let b = run_fingerprint(injector_config(KernelMode::Optimized, injection, 21));
        assert_eq!(a, b, "{injection:?}: rerun must reproduce exactly");
        let legacy = run_fingerprint(injector_config(KernelMode::Legacy, injection, 21));
        assert_eq!(a, legacy, "{injection:?}: kernels diverge");
        let other_seed = run_fingerprint(injector_config(KernelMode::Optimized, injection, 22));
        assert_ne!(a, other_seed, "{injection:?}: seed must matter");
    }
}

#[test]
fn kernels_match_on_multi_phase_scenarios_with_load_overrides() {
    // A three-phase scenario with a per-phase load override: phase switches
    // must land on exact cycles under both kernels.
    let run = |kernel: KernelMode| {
        let scenario = Scenario::named("UN-storm-UN")
            .injection(InjectionKind::Bursty {
                mean_on: 30.0,
                mean_off: 30.0,
            })
            .phase(PatternKind::Uniform, 300)
            .phase_at_load(PatternKind::Adversarial { offset: 1 }, 0.35, 300)
            .hold(PatternKind::Uniform);
        let cfg = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Base)
            .scenario(&scenario)
            .offered_load(0.15)
            .warmup_cycles(300)
            .measurement_cycles(600)
            .seed(5)
            .kernel(kernel)
            .build()
            .unwrap();
        run_fingerprint(cfg)
    };
    assert_eq!(run(KernelMode::Optimized), run(KernelMode::Legacy));
}

#[test]
fn golden_summary_is_pinned() {
    // Pinned fingerprint for one configuration. If this test fails, the
    // change altered simulation semantics (RNG streams, event ordering,
    // allocation tie-breaks, ...) — that may be intentional, but it must be
    // a conscious decision: update the constants below in the same commit
    // and call it out in the PR description.
    let fp = run_fingerprint(config(
        KernelMode::Optimized,
        RoutingKind::Base,
        PatternKind::Adversarial { offset: 1 },
        0.2,
        9,
    ));
    assert!(fp.drained, "golden run must drain");
    assert_eq!(fp.in_flight, 0);
    // Pinned on the Base/ADV+1/0.2/seed-9 fast-test configuration; the mean
    // latency is pinned by exact f64 bit pattern (≈ 100.115351 cycles).
    assert_eq!(fp.delivered_window, 1_153);
    assert_eq!(fp.delivered_total, 1_336);
    assert_eq!(fp.final_cycle, 954);
    assert_eq!(fp.latency_bits, 0x4059_0761_EA3D_B971);
}
