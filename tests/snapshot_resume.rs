//! Resume bit-identity: a run interrupted by [`Network::snapshot`] and
//! continued via [`Network::restore`] must be indistinguishable — in every
//! counter, histogram bin and f64 bit pattern — from the run that was never
//! interrupted.
//!
//! The property is checked at pseudo-randomly drawn checkpoint cycles
//! (warmup, mid-measurement, inside fault windows, mid-churn) and across
//! kernels: a snapshot written by the optimized kernel resumes under the
//! legacy and parallel kernels at several worker counts, because snapshots
//! are kernel-portable by construction (the config fingerprint is
//! kernel-normalized and the event queue is rebuilt per kernel on restore).
//! The resumed golden run must also reproduce the literal pinned constants
//! of `determinism::golden_summary_is_pinned`.

use contention_dragonfly::prelude::*;

fn base_config(kernel: KernelMode) -> SimulationConfig {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .offered_load(0.2)
        .warmup_cycles(200)
        .measurement_cycles(600)
        .seed(9)
        .kernel(kernel)
        .build()
        .expect("valid configuration")
}

/// Everything that must match between the interrupted and the
/// uninterrupted run (the `determinism.rs` fingerprint plus the fault
/// counters the snapshot carries).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    delivered_window: u64,
    delivered_total: u64,
    generated_phits: u64,
    final_cycle: u64,
    in_flight: u64,
    latency_bits: u64,
    hops_bits: u64,
    p99_bits: u64,
    histogram_bins: Vec<u64>,
    dropped_on_fault: u64,
    retargeted: u64,
    lost_credits: u64,
    drained: bool,
}

fn fingerprint_of(net: &Network, drained: bool) -> Fingerprint {
    let summary = net.metrics().window_summary();
    Fingerprint {
        delivered_window: summary.delivered_packets,
        delivered_total: net.metrics().delivered_packets_total(),
        generated_phits: net.metrics().generated_phits_total,
        final_cycle: net.cycle(),
        in_flight: net.in_flight(),
        latency_bits: summary.avg_packet_latency.to_bits(),
        hops_bits: summary.avg_hops.to_bits(),
        p99_bits: summary.p99_latency.to_bits(),
        histogram_bins: net.metrics().latency_histogram().bins().to_vec(),
        dropped_on_fault: net.metrics().dropped_on_fault_packets(),
        retargeted: net.metrics().retargeted_packets(),
        lost_credits: net.fault_lost_credits(),
        drained,
    }
}

/// Drive `net` from its current cycle to the end of the measurement window
/// (starting measurement at the warmup boundary if it hasn't started) and
/// drain.
fn finish(net: &mut Network, warmup: u64, total: u64) -> Fingerprint {
    if net.cycle() < warmup {
        let ahead = warmup - net.cycle();
        net.run_cycles(ahead);
        let start = net.cycle();
        net.metrics_mut().start_measurement(start);
    }
    net.run_cycles(total - net.cycle());
    let drained = net.drain(100_000);
    fingerprint_of(net, drained)
}

/// The uninterrupted reference run.
fn straight_run(cfg: &SimulationConfig) -> Fingerprint {
    let warmup = cfg.warmup_cycles;
    let total = warmup + cfg.measurement_cycles;
    let mut net = Network::new(cfg.clone());
    finish(&mut net, warmup, total)
}

/// Run to `checkpoint`, snapshot, restore under `resume_cfg` (same machine,
/// possibly a different kernel), and finish the run from the snapshot.
fn interrupted_run(
    cfg: &SimulationConfig,
    resume_cfg: &SimulationConfig,
    checkpoint: u64,
) -> Fingerprint {
    let warmup = cfg.warmup_cycles;
    let total = warmup + cfg.measurement_cycles;
    assert!(checkpoint < total);
    let mut net = Network::new(cfg.clone());
    if checkpoint >= warmup {
        net.run_cycles(warmup);
        let start = net.cycle();
        net.metrics_mut().start_measurement(start);
        net.run_cycles(checkpoint - warmup);
    } else {
        net.run_cycles(checkpoint);
    }
    let bytes = net.snapshot();
    assert_eq!(Network::snapshot_cycle(&bytes).ok(), Some(checkpoint));
    drop(net);
    let mut resumed = Network::restore(resume_cfg.clone(), &bytes).expect("snapshot restores");
    finish(&mut resumed, warmup, total)
}

/// Deterministic pseudo-random checkpoint cycles in `[1, total)`, biased
/// nowhere in particular — the property must hold at *any* cycle.
fn random_checkpoints(seed: u64, total: u64, n: usize) -> Vec<u64> {
    let mut rng = DeterministicRng::new(seed);
    (0..n).map(|_| 1 + rng.next_u64() % (total - 1)).collect()
}

#[test]
fn resume_is_bit_identical_at_random_checkpoints() {
    let cfg = base_config(KernelMode::Optimized);
    let reference = straight_run(&cfg);
    for checkpoint in random_checkpoints(0xC0FFEE, 800, 6) {
        let resumed = interrupted_run(&cfg, &cfg, checkpoint);
        assert_eq!(
            resumed, reference,
            "resume from cycle {checkpoint} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn snapshots_resume_bit_identically_under_every_kernel() {
    // One optimized-kernel snapshot per checkpoint, resumed under the
    // legacy heap kernel and the sharded parallel kernel at 1, 2 and 4
    // workers: the mixed-kernel run must still match the uninterrupted
    // optimized reference, because the kernels are bit-identical and the
    // snapshot carries no kernel-specific state.
    let cfg = base_config(KernelMode::Optimized);
    let reference = straight_run(&cfg);
    let resumes = [
        KernelMode::Legacy,
        KernelMode::Parallel { workers: 1 },
        KernelMode::Parallel { workers: 2 },
        KernelMode::Parallel { workers: 4 },
    ];
    for checkpoint in random_checkpoints(0xBEEF, 800, 2) {
        for kernel in resumes {
            let resumed = interrupted_run(&cfg, &base_config(kernel), checkpoint);
            assert_eq!(
                resumed, reference,
                "resume under {kernel:?} from cycle {checkpoint} diverged"
            );
        }
    }
}

#[test]
fn resume_mid_fault_window_is_bit_identical() {
    // Checkpoints landing inside an open link-outage window: the snapshot
    // must carry the down-link set, the lost-credit ledger and the pending
    // repair events.
    let topo = Dragonfly::new(DragonflyParams::small());
    let (r1, p1) = FaultPlan::global_link_between(&topo, GroupId(0), GroupId(3));
    let (r2, p2) = FaultPlan::global_link_between(&topo, GroupId(2), GroupId(5));
    let faults = FaultPlan::new()
        .link_down(250, r1, p1)
        .link_down(320, r2, p2)
        .link_up(520, r1, p1)
        .link_up(600, r2, p2);
    let cfg = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::PiggyBacking)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .offered_load(0.2)
        .warmup_cycles(200)
        .measurement_cycles(600)
        .faults(faults)
        .seed(4)
        .build()
        .expect("valid configuration");
    let reference = straight_run(&cfg);
    // Two checkpoints strictly inside the outage windows, one after repair.
    for checkpoint in [300, 450, 700] {
        let resumed = interrupted_run(&cfg, &cfg, checkpoint);
        assert_eq!(
            resumed, reference,
            "mid-fault resume from cycle {checkpoint} diverged"
        );
    }
}

#[test]
fn resume_mid_churn_is_bit_identical() {
    // Sustained seeded churn over links and nodes: checkpoints drawn inside
    // the churn window must restore the spare-remapping and node-failure
    // state exactly.
    let churn = ChurnModel::new(23, 200, 700)
        .global_links(ChurnRate::new(600.0, 120.0))
        .local_links(ChurnRate::new(1_200.0, 120.0))
        .nodes(ChurnRate::new(2_400.0, 120.0));
    let cfg = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Ectn)
        .pattern(PatternKind::Uniform)
        .offered_load(0.25)
        .warmup_cycles(200)
        .measurement_cycles(600)
        .churn(churn)
        .seed(8)
        .build()
        .expect("valid configuration");
    let reference = straight_run(&cfg);
    for checkpoint in random_checkpoints(0xD1CE, 700, 4) {
        let resumed = interrupted_run(&cfg, &cfg, checkpoint);
        assert_eq!(
            resumed, reference,
            "mid-churn resume from cycle {checkpoint} diverged"
        );
    }
}

#[test]
fn mid_drain_snapshot_resumes_bit_identically() {
    // Checkpointing inside the drain phase: the chunked drain must stop on
    // the registered checkpoint cycle *exactly* (the fast-forward clamps
    // its clock jumps to checkpoint change points — an overshoot would
    // silently move the snapshot), and the resumed network must finish the
    // drain to the same fingerprint as an uninterrupted one.
    let cfg = base_config(KernelMode::Optimized);
    let warmup = cfg.warmup_cycles;
    let total = warmup + cfg.measurement_cycles;

    let mut straight = Network::new(cfg.clone());
    let reference = finish(&mut straight, warmup, total);
    assert!(reference.drained);

    let mut net = Network::new(cfg.clone());
    net.run_cycles(warmup);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(total - warmup);
    let checkpoint = net.cycle() + 40;
    net.add_checkpoint_points(&[checkpoint]);
    let done = net.drain(40);
    assert!(
        !done,
        "the drain budget is deliberately too small to finish"
    );
    assert_eq!(
        net.cycle(),
        checkpoint,
        "drain fast-forward must land exactly on the registered checkpoint"
    );
    let bytes = net.snapshot();
    drop(net);
    let mut resumed = Network::restore(cfg, &bytes).expect("mid-drain snapshot restores");
    let drained = resumed.drain(100_000 - 40);
    assert_eq!(fingerprint_of(&resumed, drained), reference);
}

#[test]
fn resumed_golden_run_reproduces_the_pinned_constants() {
    // The same configuration `determinism::golden_summary_is_pinned` pins —
    // interrupted at an arbitrary measurement cycle and resumed, it must
    // reproduce the identical literal constants.
    let cfg = base_config(KernelMode::Optimized);
    let fp = interrupted_run(&cfg, &cfg, 433);
    assert!(fp.drained, "golden run must drain");
    assert_eq!(fp.in_flight, 0);
    assert_eq!(fp.delivered_window, 1_153);
    assert_eq!(fp.delivered_total, 1_336);
    assert_eq!(fp.final_cycle, 954);
    assert_eq!(fp.latency_bits, 0x4059_0761_EA3D_B971);
}

#[test]
#[ignore = "paper-scale smoke: ~1k-router topology, run explicitly"]
fn paper_scale_snapshot_resume_smoke() {
    let cfg = SimulationConfig::builder()
        .topology(DragonflyParams::paper_table1())
        .network(NetworkConfig::paper_table1())
        .routing(RoutingKind::PiggyBacking)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .offered_load(0.2)
        .warmup_cycles(400)
        .measurement_cycles(800)
        .seed(2)
        .build()
        .expect("valid configuration");
    let reference = straight_run(&cfg);
    let resumed = interrupted_run(&cfg, &cfg, 650);
    assert_eq!(resumed, reference, "paper-scale resume diverged");
    assert!(reference.delivered_window > 0);
}
