//! Adversarial fault-routing suite (PR 5): the re-commit rule, unroutable
//! discards, link-state dissemination through PB/ECtN, and the degraded
//! topology queries backing them.
//!
//! The headline contract: the pinned `ADV-cut2` double-cut — which used to
//! strand 54–75 committed packets forever — drains to **zero** stranded
//! packets under every fault-corpus mechanism, with packet and phit
//! conservation holding as exact equalities, bit-identically across the
//! optimized, legacy and parallel kernels at several worker counts.

use contention_dragonfly::prelude::*;
use df_sim::FaultPlan;

// -------------------------------------------------------------------------
// helpers
// -------------------------------------------------------------------------

fn small_topo() -> Dragonfly {
    Dragonfly::new(DragonflyParams::small())
}

/// The endpoint of the unique global link between two groups.
fn link_between(g1: u32, g2: u32) -> (RouterId, Port) {
    FaultPlan::global_link_between(&small_topo(), GroupId(g1), GroupId(g2))
}

/// The ADV-cut2 fault plan of the golden corpus: both global links of the
/// adversarial hot path (0→1 and 1→2) die at cycle 100 and never recover.
fn cut2_plan() -> FaultPlan {
    let (gw01, port01) = link_between(0, 1);
    let (gw12, port12) = link_between(1, 2);
    FaultPlan::new()
        .link_down(100, gw01, port01)
        .link_down(100, gw12, port12)
}

fn corpus_builder() -> df_sim::SimulationConfigBuilder {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .offered_load(0.2)
        .warmup_cycles(200)
        .measurement_cycles(400)
        .seed(11)
}

/// The exact conservation equalities every faulted run must satisfy.
fn check_exact_conservation(net: &Network) {
    assert_eq!(
        net.injected_packets_total(),
        net.metrics().delivered_packets_total()
            + net.in_flight()
            + net.metrics().dropped_on_fault_packets(),
        "packet conservation must hold as an exact equality"
    );
    assert_eq!(
        net.injected_phits_total(),
        net.metrics().delivered_phits_total()
            + net.in_flight_phits()
            + net.metrics().dropped_on_fault_phits(),
        "phit conservation must hold as an exact equality"
    );
}

// -------------------------------------------------------------------------
// 1. the tentpole: ADV-cut2 drains to zero stranded packets
// -------------------------------------------------------------------------

#[test]
fn adv_cut2_drains_to_zero_stranded_under_every_corpus_mechanism() {
    for routing in [RoutingKind::Base, RoutingKind::Olm, RoutingKind::Ectn] {
        let cfg = corpus_builder()
            .routing(routing)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .faults(cut2_plan())
            .build()
            .unwrap();
        let mut net = Network::new(cfg);
        net.run_cycles(600);
        assert!(
            net.drain(20_000),
            "{routing}: the cut network must drain completely under re-commit"
        );
        assert_eq!(net.in_flight(), 0, "{routing}: zero stranded packets");
        assert_eq!(net.in_flight_phits(), 0);
        check_exact_conservation(&net);
        let m = net.metrics();
        if routing != RoutingKind::Ectn {
            // ECtN's injection-time misroutes commit to the source router's
            // *own* global ports and are consumed at the very next grant,
            // so (unlike Base/OLM, which commit to remote gateways) it may
            // legitimately have no pending commitment for the cut to catch.
            assert!(
                m.recommitted_packets() > 0,
                "{routing}: committed packets at the dead gateways must re-commit"
            );
        }
        assert!(
            m.dropped_unroutable_packets() > 0,
            "{routing}: packets already misrouted into the cut-off group are \
             unroutable within the VC budget and must be discarded"
        );
        assert!(
            m.dropped_staged_packets() > 0,
            "{routing}: packets staged behind the dying links are lost with them"
        );
        // every input VC and output buffer in the network is empty
        let topo = *net.topology();
        for r in topo.routers() {
            assert_eq!(net.router(r).queued_packets(), 0, "{routing}: router {r}");
        }
    }
}

#[test]
fn adv_cut2_is_bit_identical_across_all_kernels_and_worker_counts() {
    for routing in [RoutingKind::Base, RoutingKind::Ectn] {
        let run = |kernel: KernelMode| {
            let mut cfg = corpus_builder()
                .routing(routing)
                .pattern(PatternKind::Adversarial { offset: 1 })
                .faults(cut2_plan())
                .build()
                .unwrap();
            cfg.kernel = kernel;
            let mut net = Network::new(cfg);
            net.metrics_mut().start_measurement(0);
            net.run_cycles(600);
            net.drain(20_000);
            let s = net.metrics().window_summary();
            (
                s.delivered_packets,
                s.avg_packet_latency.to_bits(),
                net.metrics().dropped_on_fault_packets(),
                net.metrics().dropped_staged_packets(),
                net.metrics().dropped_unroutable_packets(),
                net.metrics().recommitted_packets(),
                net.in_flight(),
                net.cycle(),
                net.pending_events(),
            )
        };
        let reference = run(KernelMode::Optimized);
        assert_eq!(reference.6, 0, "{routing}: drains to zero");
        assert!(reference.4 > 0, "{routing}: unroutable discards happen");
        if routing == RoutingKind::Base {
            assert!(reference.5 > 0, "{routing}: re-commits happen");
        }
        assert_eq!(
            run(KernelMode::Legacy),
            reference,
            "{routing}: legacy kernel diverged on the re-commit trajectory"
        );
        for workers in [1usize, 2, 4] {
            assert_eq!(
                run(KernelMode::Parallel { workers }),
                reference,
                "{routing}: parallel({workers}) diverged on the re-commit trajectory"
            );
        }
    }
}

// -------------------------------------------------------------------------
// 2. link-state dissemination vs discover-at-gateway
// -------------------------------------------------------------------------

#[test]
fn linkstate_mechanisms_lose_less_traffic_than_gateway_discovery() {
    // Under the permanent double cut, Base keeps committing group-1-bound
    // packets into the cut-off intermediate group until backpressure stops
    // it (each one discarded as unroutable at the dead gateway), while
    // ECtN's piggybacked gateway-liveness bits steer injections away at the
    // source and PB's view diverts its Valiant picks. Everyone drains to
    // zero; the mechanisms differ in how much traffic the failure costs.
    let run = |routing: RoutingKind| {
        let cfg = corpus_builder()
            .routing(routing)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .faults(cut2_plan())
            .build()
            .unwrap();
        let mut net = Network::new(cfg);
        net.run_cycles(600);
        net.drain(20_000);
        check_exact_conservation(&net);
        // "stranded or lost": whatever was injected but never delivered
        net.in_flight() + net.metrics().dropped_on_fault_packets()
    };
    let base = run(RoutingKind::Base);
    let ectn = run(RoutingKind::Ectn);
    let pb = run(RoutingKind::PiggyBacking);
    assert!(base > 0, "the cut must cost Base traffic");
    assert!(
        ectn < base,
        "ECtN's link-state view must lose fewer packets than Base's \
         gateway discovery ({ectn} vs {base})"
    );
    assert!(
        pb < base,
        "PB's link-state view must lose fewer packets than Base's \
         gateway discovery ({pb} vs {base})"
    );
}

#[test]
fn ectn_flooding_disseminates_faults_one_live_hop_per_exchange() {
    // ECtN broadcasts every 100 cycles, and the gateway-liveness entries
    // ride the same exchanges as a per-group *flood*: each exchange carries
    // an entry one live group-hop further from the group that owns it. With
    // the 0↔1 link cut at cycle 150:
    //   * the incident groups observe their own side directly, so they
    //     learn it at the first post-fault exchange (cycle 200);
    //   * every other group is one live hop from each incident group and
    //     learns both sides one exchange later (cycle 300);
    //   * each incident group's live path to the *far* group is two hops
    //     (the direct link is the dead one), so it learns the far-side
    //     entry at cycle 400.
    // The recovery at 450 retraces the same hops: own side at 500,
    // everywhere by 600.
    let (gw01, port01) = link_between(0, 1);
    let cfg = corpus_builder()
        .routing(RoutingKind::Ectn)
        .pattern(PatternKind::Uniform)
        .faults(
            FaultPlan::new()
                .link_down(150, gw01, port01)
                .link_up(450, gw01, port01),
        )
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    let topo = *net.topology();
    let j01 = topo.group_link_to(GroupId(0), GroupId(1));
    let j10 = topo.group_link_to(GroupId(1), GroupId(0));
    let probe0 = RouterId(3); // a non-gateway router of incident group 0
    let probe5 = RouterId(22); // a router of group 5, distance 1 from both
    net.run_cycles(200); // cycles 0..199: fault fired, no exchange since
    assert!(
        net.router(probe0).link_view().link_up(GroupId(0), j01),
        "the exchange at 200 has not run yet; the view is still pre-fault"
    );
    net.run_cycles(1); // the exchange at 200
    assert!(
        !net.router(probe0).link_view().link_up(GroupId(0), j01),
        "the incident group learns its own side at the first exchange"
    );
    assert!(
        net.router(probe5).link_view().link_up(GroupId(0), j01),
        "a distance-one group has not heard yet: the flood moves one live \
         hop per exchange, not network-wide in one step"
    );
    assert!(
        net.router(probe0).link_view().link_up(GroupId(1), j10),
        "the far-side entry is two live hops from group 0 (the direct link \
         is the dead one) and cannot have arrived yet"
    );
    net.run_cycles(100); // the exchange at 300
    assert!(!net.router(probe5).link_view().link_up(GroupId(0), j01));
    assert!(!net.router(probe5).link_view().link_up(GroupId(1), j10));
    net.run_cycles(100); // the exchange at 400: full convergence
    for r in topo.routers() {
        assert!(!net.router(r).link_view().link_up(GroupId(0), j01));
        assert!(!net.router(r).link_view().link_up(GroupId(1), j10));
    }
    net.run_cycles(200); // through the exchanges at 500 and 600
    for r in topo.routers() {
        assert!(
            net.router(r).link_view().link_up(GroupId(0), j01),
            "router {r}: the view recovers after LinkUp"
        );
        assert!(net.router(r).link_view().link_up(GroupId(1), j10));
    }
    // The staleness metric counts exactly the cycles where some view still
    // lags the truth: 150..400 after the fault (250 cycles, converging at
    // the exchange at 400) plus 450..600 after the repair (150 cycles) —
    // within the (1 + max live hop distance) × period bound per event.
    assert_eq!(net.metrics().stale_linkstate_cycles(), 250 + 150);
}

#[test]
fn mechanisms_without_dissemination_keep_a_pristine_view() {
    // Base has no control-plane exchange: its routers must never install
    // link state (discover-at-gateway is part of the mechanism comparison).
    let cfg = corpus_builder()
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .faults(cut2_plan())
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.run_cycles(600);
    let topo = *net.topology();
    for r in topo.routers() {
        assert!(
            net.router(r).link_view().all_up(),
            "Base router {r} must hold a pristine (never-installed) view"
        );
    }
    assert_eq!(
        net.metrics().stale_linkstate_cycles(),
        0,
        "staleness is only metered for disseminating mechanisms"
    );
}

// -------------------------------------------------------------------------
// 3. recovery after LinkUp returns to the healthy fingerprint
// -------------------------------------------------------------------------

#[test]
fn recovery_after_linkup_returns_to_the_healthy_fingerprint() {
    // A link that dies and recovers while the network carries no traffic
    // must leave zero residue: the exact same delivered/latency/final-cycle
    // fingerprint as a run that never had the fault — proving the credit
    // ledger, the link flags, the activity gate and the disseminated view
    // all return to the healthy state bit-for-bit.
    let (gw01, port01) = link_between(0, 1);
    for routing in [
        RoutingKind::Base,
        RoutingKind::Ectn,
        RoutingKind::PiggyBacking,
        RoutingKind::Olm,
    ] {
        let run = |faults: FaultPlan| {
            let scenario = Scenario::named("quiet-then-un")
                .phase_at_load(PatternKind::Uniform, 0.0, 120)
                .hold(PatternKind::Uniform);
            let cfg = corpus_builder()
                .routing(routing)
                .scenario(&scenario)
                .faults(faults)
                .build()
                .unwrap();
            let mut net = Network::new(cfg);
            net.run_cycles(200);
            let start = net.cycle();
            net.metrics_mut().start_measurement(start);
            net.run_cycles(400);
            assert!(net.drain(50_000));
            let s = net.metrics().window_summary();
            (
                s.delivered_packets,
                s.avg_packet_latency.to_bits(),
                net.cycle(),
                net.metrics().dropped_on_fault_packets(),
            )
        };
        let faulted = run(FaultPlan::new()
            .link_down(20, gw01, port01)
            .link_up(80, gw01, port01));
        let healthy = run(FaultPlan::new());
        assert_eq!(
            faulted, healthy,
            "{routing}: a fault healed before traffic starts must leave the \
             trajectory byte-identical to a healthy run"
        );
        assert_eq!(faulted.3, 0, "{routing}: nothing was dropped");
    }
}

#[test]
fn recovery_with_traffic_restores_full_credit_conservation() {
    // The harder recovery case: the double cut *with* traffic, recommits,
    // discards and staged drops, then both LinkUps — after the drain every
    // credit is back, every counter zero, the ledger empty.
    let (gw01, port01) = link_between(0, 1);
    let (gw12, port12) = link_between(1, 2);
    for routing in [RoutingKind::Base, RoutingKind::Ectn] {
        let cfg = corpus_builder()
            .routing(routing)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .faults(
                FaultPlan::new()
                    .link_down(100, gw01, port01)
                    .link_down(100, gw12, port12)
                    .link_up(450, gw01, port01)
                    .link_up(450, gw12, port12),
            )
            .build()
            .unwrap();
        let mut net = Network::new(cfg);
        net.run_cycles(600);
        assert!(net.drain(50_000), "{routing}: restored network drains");
        check_exact_conservation(&net);
        assert_eq!(net.fault_lost_credits(), 0, "{routing}: ledger returned");
        assert_eq!(net.total_contention(), 0);
        let topo = *net.topology();
        let params = *topo.params();
        for router_id in topo.routers() {
            let router = net.router(router_id);
            for port in Port::all(&params) {
                let output = router.output(port);
                for vc in 0..output.num_downstream_vcs() {
                    assert_eq!(
                        output.credits(VcId(vc as u8)),
                        output.credit_capacity(VcId(vc as u8)),
                        "{routing}: router {router_id} port {port} vc {vc}"
                    );
                }
            }
        }
    }
}

// -------------------------------------------------------------------------
// 4. Valiant re-picks dead waypoints
// -------------------------------------------------------------------------

#[test]
fn valiant_repicks_waypoints_blocked_by_a_dead_link() {
    // Under uniform traffic with the 0↔1 link down, VAL packets committed
    // to waypoints reached through it re-pick a live intermediate at the
    // source instead of stalling on the dead port. VAL stays oblivious past
    // the waypoint (a post-waypoint minimal leg over the dead link still
    // waits — like MIN), so the fault heals at 450 and everything drains.
    let (gw01, port01) = link_between(0, 1);
    let run = |faults: FaultPlan| {
        let cfg = corpus_builder()
            .routing(RoutingKind::Valiant)
            .pattern(PatternKind::Uniform)
            .faults(faults)
            .build()
            .unwrap();
        let mut net = Network::new(cfg);
        net.run_cycles(600);
        assert!(net.drain(50_000), "VAL drains after the link heals");
        check_exact_conservation(&net);
        net.metrics().recommitted_packets()
    };
    let repicked = run(FaultPlan::new()
        .link_down(150, gw01, port01)
        .link_up(450, gw01, port01));
    assert!(
        repicked > 0,
        "waypoints behind the dead link must have been re-picked"
    );
    assert_eq!(run(FaultPlan::new()), 0, "healthy runs never re-commit");
}

// -------------------------------------------------------------------------
// 5. property tests: degraded-connectivity queries
// -------------------------------------------------------------------------

/// Brute-force reachability by iterating edge relaxation to a fixpoint —
/// deliberately a different algorithm from the BFS in `LinkState`.
fn floodfill_reachable(topo: &Dragonfly, state: &LinkState, from: RouterId) -> usize {
    let n = topo.num_routers() as usize;
    let params = *topo.params();
    let mut reached = vec![false; n];
    reached[from.index()] = true;
    loop {
        let mut changed = false;
        for r in topo.routers() {
            if !reached[r.index()] {
                continue;
            }
            for port in Port::all(&params) {
                if port.class(&params) == PortClass::Terminal || !state.is_up(r, port) {
                    continue;
                }
                if let df_topology::PortPeer::Router(peer, _) = topo.peer(r, port) {
                    if !reached[peer.index()] {
                        reached[peer.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    reached.iter().filter(|&&x| x).count()
}

/// Brute-force group-pair connectivity: enumerate *every* global port of
/// both groups and look for the direct link between the pair with both
/// directions up — independent of `gateway_to`.
fn exhaustive_pair_connected(
    topo: &Dragonfly,
    state: &LinkState,
    g1: GroupId,
    g2: GroupId,
) -> bool {
    let params = *topo.params();
    for r in topo.routers_in_group(g1) {
        for k in 0..params.h {
            let port = Port::global(&params, k);
            if let Some((peer, back)) = topo.global_neighbor(r, k) {
                if topo.router_group(peer) == g2 && state.is_up(r, port) && state.is_up(peer, back)
                {
                    return true;
                }
            }
        }
    }
    false
}

#[test]
fn reachable_routers_matches_bruteforce_floodfill_under_random_masks() {
    let topo = small_topo();
    let params = *topo.params();
    let mut rng = DeterministicRng::new(0xFA_17);
    for _trial in 0..40 {
        let mut state = LinkState::new(&topo);
        // knock out a random set of links (0..12), sometimes asymmetric
        let cuts = rng.below(12) as usize;
        for _ in 0..cuts {
            let r = RouterId(rng.below(topo.num_routers() as u64) as u32);
            let port = Port(rng.below(params.radix() as u64) as u32);
            if port.class(&params) == PortClass::Terminal {
                continue;
            }
            if !matches!(topo.peer(r, port), df_topology::PortPeer::Router(..)) {
                continue;
            }
            if rng.below(4) == 0 {
                state.set_directed(r, port, false); // asymmetric degradation
            } else {
                state.set_link(&topo, r, port, false);
            }
        }
        for start in [RouterId(0), RouterId(7), RouterId(20), RouterId(35)] {
            assert_eq!(
                state.reachable_routers(&topo, start),
                floodfill_reachable(&topo, &state, start),
                "BFS and floodfill disagree from {start} with {cuts} cuts"
            );
        }
        assert_eq!(
            state.connected(&topo),
            floodfill_reachable(&topo, &state, RouterId(0)) == topo.num_routers() as usize
        );
    }
}

#[test]
fn group_pair_connected_matches_exhaustive_enumeration_under_random_masks() {
    let topo = small_topo();
    let params = *topo.params();
    let mut rng = DeterministicRng::new(0xBEE);
    for _trial in 0..40 {
        let mut state = LinkState::new(&topo);
        let cuts = rng.below(10) as usize;
        for _ in 0..cuts {
            // cut random *global* links, where the pair query is decided
            let r = RouterId(rng.below(topo.num_routers() as u64) as u32);
            let k = rng.below(params.h as u64) as u32;
            let port = Port::global(&params, k);
            if topo.global_neighbor(r, k).is_none() {
                continue;
            }
            state.set_link(&topo, r, port, false);
        }
        for a in 0..topo.num_groups() {
            for b in 0..topo.num_groups() {
                if a == b {
                    continue;
                }
                let (g1, g2) = (GroupId(a), GroupId(b));
                assert_eq!(
                    state.group_pair_connected(&topo, g1, g2),
                    exhaustive_pair_connected(&topo, &state, g1, g2),
                    "pair ({a},{b}) disagrees with exhaustive enumeration"
                );
            }
        }
    }
}

// -------------------------------------------------------------------------
// 6. FaultPlan validation rejection paths
// -------------------------------------------------------------------------

#[test]
fn fault_plan_rejects_bare_terminal_links_and_points_at_node_fail() {
    let err = FaultPlan::new()
        .link_down(10, RouterId(0), Port(0))
        .validate(&small_topo())
        .unwrap_err();
    assert!(err.contains("terminal links cannot fail"), "{err}");
    assert!(
        err.contains("NodeFail") && err.contains("drain-at-source"),
        "the rejection must point at the NodeFail drain-at-source semantics: {err}"
    );
}

#[test]
fn fault_plan_rejects_same_cycle_duplicates_on_one_link() {
    let topo = small_topo();
    let (gw, port) = link_between(0, 1);
    // down + up in the same cycle: insertion-order-dependent, rejected
    let err = FaultPlan::new()
        .link_down(100, gw, port)
        .link_up(100, gw, port)
        .validate(&topo)
        .unwrap_err();
    assert!(err.contains("same cycle"), "{err}");
    // the same physical link named from both of its ends collides too
    let (peer, back) = match topo.peer(gw, port) {
        df_topology::PortPeer::Router(p, b) => (p, b),
        _ => unreachable!("global links are wired"),
    };
    let err = FaultPlan::new()
        .link_down(100, gw, port)
        .link_down(100, peer, back)
        .validate(&topo)
        .unwrap_err();
    assert!(err.contains("same cycle"), "{err}");
}

#[test]
fn fault_plan_rejects_up_before_down_and_double_down() {
    let topo = small_topo();
    let (gw, port) = link_between(0, 1);
    let err = FaultPlan::new()
        .link_up(100, gw, port)
        .validate(&topo)
        .unwrap_err();
    assert!(err.contains("up-before-down"), "{err}");
    // an up whose matching down comes later on the sorted clock is the
    // same mistake
    let err = FaultPlan::new()
        .link_down(300, gw, port)
        .link_up(100, gw, port)
        .validate(&topo)
        .unwrap_err();
    assert!(err.contains("up-before-down"), "{err}");
    let err = FaultPlan::new()
        .link_down(100, gw, port)
        .link_down(200, gw, port)
        .validate(&topo)
        .unwrap_err();
    assert!(err.contains("already down"), "{err}");
    // and the well-formed sequence passes
    assert!(FaultPlan::new()
        .link_down(100, gw, port)
        .link_up(200, gw, port)
        .link_down(300, gw, port)
        .validate(&topo)
        .is_ok());
}

#[test]
fn fault_plan_rejects_unknown_routers_and_ports() {
    let topo = small_topo();
    let err = FaultPlan::new()
        .link_down(10, RouterId(999), Port(5))
        .validate(&topo)
        .unwrap_err();
    assert!(
        err.contains("router") && err.contains("out of range"),
        "{err}"
    );
    let err = FaultPlan::new()
        .link_down(10, RouterId(0), Port(99))
        .validate(&topo)
        .unwrap_err();
    assert!(
        err.contains("port") && err.contains("out of range"),
        "{err}"
    );
    let err = FaultPlan::new()
        .router_restore(10, RouterId(999))
        .validate(&topo)
        .unwrap_err();
    assert!(err.contains("out of range"), "{err}");
}
