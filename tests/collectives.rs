//! Collective task-layer suite: rank-level workloads (all-to-all,
//! all-reduce, barriers, neighbour sweeps) executed on the packet engine.
//!
//! Extends every correctness contract of the simulator to the task layer:
//!
//! 1. **Completion** — every collective completes under every contention
//!    mechanism, reporting an application completion time, a per-step
//!    timeline and rank stall cycles, with exact packet conservation
//!    (workload mode generates no stochastic traffic, so injected ==
//!    delivered == the workload's lowered packet count).
//! 2. **The pinned corpus** — `GOLDEN_COLLECTIVES` in
//!    `tests/common/golden_corpus.rs` fingerprints every workload ×
//!    routing cell. The configurations deliberately do not set a
//!    [`KernelMode`], so CI replays the table under every kernel — which
//!    must be bit-for-bit identical.
//! 3. **Cross-kernel bit-identity** — the optimized, legacy and parallel
//!    (1, 2 and 4 workers) kernels are compared directly on the same
//!    workloads.
//! 4. **Snapshot/resume mid-collective** — a snapshot taken with sends
//!    outstanding and a partially executed script resumes bit-identically,
//!    under the same kernel and across kernels.
//! 5. **Behaviour under faults** — a router drain mid-collective delays
//!    but cannot lose traffic (completion guaranteed); a permanently
//!    failed rank stalls its peers honestly (bounded budget, no hang, no
//!    spurious completion).
//!
//! Regenerate the pinned table after an intentional semantics change with
//!
//! ```text
//! cargo test --release --test collectives -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants into `tests/common/golden_corpus.rs` in
//! the same commit.
//!
//! [`KernelMode`]: contention_dragonfly::prelude::KernelMode

use contention_dragonfly::prelude::*;

#[path = "common/golden_corpus.rs"]
#[allow(dead_code)]
mod golden_corpus;

use golden_corpus::{
    collective_config, collective_fingerprint, collective_routings, collective_workloads,
    GOLDEN_COLLECTIVES,
};

// ---------------------------------------------------------------------------
// 1. completion, conservation and the application-level report
// ---------------------------------------------------------------------------

#[test]
fn every_collective_completes_under_every_mechanism() {
    for workload in collective_workloads() {
        let total_packets = workload.total_packets();
        let total_steps = workload.total_steps();
        for routing in collective_routings() {
            let cfg = collective_config(workload.clone(), routing);
            let report = run_task_workload(cfg, 200_000);
            let label = format!("{} under {}", workload.label(), routing.label());
            assert!(report.completed, "{label} did not complete");
            assert_eq!(report.total_steps, total_steps, "{label}: step count");
            assert_eq!(
                report.steps_completed, total_steps,
                "{label}: unfinished steps"
            );
            assert_eq!(
                report.delivered_packets, total_packets,
                "{label}: workload mode must deliver exactly the lowered packets"
            );
            // the step timeline is monotone and ends at the completion cycle
            let cycles: Vec<u64> = report
                .step_completion_cycles
                .iter()
                .map(|c| c.expect("every step completed"))
                .collect();
            assert!(
                cycles.windows(2).all(|w| w[0] <= w[1]),
                "{label}: step completion cycles must be monotone"
            );
            assert_eq!(
                cycles.last().copied(),
                report.completion_cycle,
                "{label}: the last step completes at the application completion time"
            );
            // messages traverse a real network: some rank must have waited
            assert!(
                report.total_stall_cycles > 0,
                "{label}: rank stalls cannot all be zero"
            );
            assert!(report.avg_packet_latency > 0.0, "{label}: latency");
        }
    }
}

#[test]
fn workload_mode_replaces_stochastic_generation_entirely() {
    let workload = TaskWorkload::single(CollectiveKind::AllToAll, 8, 2)
        .with_placement(RankPlacement::GroupSpread);
    let total = workload.total_packets();
    let cfg = collective_config(workload, RoutingKind::Base);
    let mut net = Network::new(cfg);
    net.run_until_tasks_complete(200_000)
        .expect("all-to-all completes");
    // offered load 0.2 would have generated thousands of packets in that
    // span — workload mode must inject only the lowered task packets
    assert_eq!(net.injected_packets_total(), total);
    assert_eq!(net.metrics().delivered_packets_total(), total);
    assert_eq!(net.in_flight(), 0);
    let task = net.task().expect("workload configured");
    assert_eq!(task.pending_packets(), 0);
    assert_eq!(
        net.metrics().task_steps_completed(),
        task.total_steps() as u64
    );
    assert_eq!(
        net.metrics().rank_stall_cycles(),
        task.stall_cycles().iter().sum::<u64>()
    );
}

#[test]
fn workload_rides_the_scenario_matrix_axis() {
    let workload = TaskWorkload::single(CollectiveKind::Barrier, 8, 1);
    let scenario = Scenario::named("barrier-x8")
        .hold(PatternKind::Uniform)
        .task_workload(workload.clone());
    let base = collective_config(workload, RoutingKind::Base);
    let matrix = ScenarioMatrix {
        scenarios: vec![scenario],
        loads: vec![0.2],
        routings: vec![RoutingKind::Base, RoutingKind::Ectn],
        ..ScenarioMatrix::new(base)
    };
    let cells = matrix.cells();
    assert_eq!(cells.len(), 2);
    for (key, cfg) in cells {
        assert!(
            cfg.workload.is_some(),
            "cell {key:?} lost the scenario's workload"
        );
        cfg.validate().expect("matrix cells stay valid");
    }
}

// ---------------------------------------------------------------------------
// 2. the pinned corpus
// ---------------------------------------------------------------------------

#[test]
fn golden_collective_corpus() {
    let mut expected = GOLDEN_COLLECTIVES.iter();
    for workload in collective_workloads() {
        for routing in collective_routings() {
            let cfg = collective_config(workload.clone(), routing);
            let got = collective_fingerprint(cfg);
            let &(ew, er, done, delivered, stalls, lat) =
                expected.next().expect("one row per workload x routing");
            assert_eq!(
                (ew, er),
                (workload.label().as_str(), routing.label()),
                "table order drifted"
            );
            assert_eq!(
                got,
                (done, delivered, stalls, lat),
                "{} under {} diverged from the pinned corpus",
                workload.label(),
                routing.label()
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the pinned table");
}

/// Regeneration helper (see the module docs).
#[test]
#[ignore = "regenerates the pinned collective corpus"]
fn regenerate_collective_corpus() {
    println!("pub const GOLDEN_COLLECTIVES: &[(&str, &str, u64, u64, u64, u64)] = &[");
    println!(
        "    // (workload, routing, completion_cycle, delivered, rank_stall_cycles, latency_bits)"
    );
    for workload in collective_workloads() {
        for routing in collective_routings() {
            let cfg = collective_config(workload.clone(), routing);
            let (done, delivered, stalls, lat) = collective_fingerprint(cfg);
            println!(
                "    ({:?}, {:?}, {done}, {delivered}, {stalls}, {lat:#018X}),",
                workload.label(),
                routing.label()
            );
        }
    }
    println!("];");
}

// ---------------------------------------------------------------------------
// 3. cross-kernel bit-identity
// ---------------------------------------------------------------------------

#[test]
fn collectives_are_bit_identical_across_kernels() {
    let kernels = [
        KernelMode::Optimized,
        KernelMode::Legacy,
        KernelMode::Parallel { workers: 1 },
        KernelMode::Parallel { workers: 2 },
        KernelMode::Parallel { workers: 4 },
    ];
    for workload in [
        TaskWorkload::single(CollectiveKind::AllToAll, 8, 2)
            .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 8, 2),
        TaskWorkload::single(
            CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
            12,
            2,
        ),
    ] {
        for routing in [RoutingKind::Base, RoutingKind::PiggyBacking] {
            let mut cfg = collective_config(workload.clone(), routing);
            cfg.kernel = KernelMode::Optimized;
            let reference = collective_fingerprint(cfg.clone());
            for kernel in kernels {
                let mut k = cfg.clone();
                k.kernel = kernel;
                assert_eq!(
                    collective_fingerprint(k),
                    reference,
                    "{} under {} diverged on {kernel:?}",
                    workload.label(),
                    routing.label()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 4. snapshot / resume mid-collective
// ---------------------------------------------------------------------------

#[test]
fn snapshot_mid_collective_resumes_bit_identically() {
    let workload = TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 8, 2)
        .with_placement(RankPlacement::GroupSpread);
    let cfg = collective_config(workload, RoutingKind::PiggyBacking);

    // uninterrupted reference
    let mut reference = Network::new(cfg.clone());
    reference.metrics_mut().start_measurement(0);
    let done = reference
        .run_until_tasks_complete(200_000)
        .expect("reference completes");

    // interrupted run: snapshot halfway, with the script partially executed
    let mut first = Network::new(cfg.clone());
    first.metrics_mut().start_measurement(0);
    first.run_cycles(done / 2);
    let task = first.task().expect("workload configured");
    assert!(
        task.pending_packets() > 0 && !task.is_complete(),
        "checkpoint must land mid-collective for this test to bite"
    );
    let bytes = first.snapshot();
    drop(first);

    let mut resumed = Network::restore(cfg.clone(), &bytes).expect("snapshot restores");
    let resumed_done = resumed
        .run_until_tasks_complete(200_000)
        .expect("resumed run completes");
    assert_eq!(resumed_done, done, "completion cycle must match");
    assert_eq!(
        resumed.metrics().delivered_packets_total(),
        reference.metrics().delivered_packets_total()
    );
    assert_eq!(
        resumed.task().unwrap().stall_cycles(),
        reference.task().unwrap().stall_cycles(),
        "per-rank stall totals must match"
    );
    assert_eq!(
        resumed.metrics().window_summary().avg_packet_latency,
        reference.metrics().window_summary().avg_packet_latency
    );
    // restore followed by snapshot reproduces the bytes exactly
    let restored = Network::restore(cfg.clone(), &bytes).expect("snapshot restores");
    assert_eq!(restored.snapshot(), bytes);

    // kernel portability: finish the same snapshot under legacy and parallel
    for kernel in [KernelMode::Legacy, KernelMode::Parallel { workers: 2 }] {
        let mut k = cfg.clone();
        k.kernel = kernel;
        let mut n = Network::restore(k, &bytes).expect("snapshot restores under any kernel");
        assert_eq!(
            n.run_until_tasks_complete(200_000),
            Some(done),
            "{kernel:?} resumed to a different completion cycle"
        );
        assert_eq!(
            n.metrics().delivered_packets_total(),
            reference.metrics().delivered_packets_total()
        );
    }
}

// ---------------------------------------------------------------------------
// 5. behaviour under faults
// ---------------------------------------------------------------------------

#[test]
fn router_drain_mid_collective_delays_but_completes() {
    let workload = TaskWorkload::single(CollectiveKind::AllToAll, 8, 2)
        .with_placement(RankPlacement::GroupSpread);
    for routing in [RoutingKind::Base, RoutingKind::Ectn] {
        let healthy = run_task_workload(collective_config(workload.clone(), routing), 200_000);
        let done = healthy.completion_cycle.expect("healthy run completes");

        // drain router 0 (hosting ranks) through the middle of the run: its
        // nodes pause, nothing is lost, and the collective finishes late
        let mut cfg = collective_config(workload.clone(), routing);
        cfg.faults = FaultPlan::new()
            .router_drain(done / 4, RouterId(0))
            .router_restore(done + 50, RouterId(0));
        cfg.validate().expect("fault plan is valid");
        let faulted = run_task_workload(cfg, 400_000);
        assert!(
            faulted.completed,
            "a drain cannot lose task packets, so the collective must finish ({})",
            routing.label()
        );
        assert!(
            faulted.completion_cycle.unwrap() > done,
            "pausing rank hosts must delay completion ({})",
            routing.label()
        );
        assert_eq!(faulted.delivered_packets, healthy.delivered_packets);
        assert!(
            faulted.total_stall_cycles >= healthy.total_stall_cycles,
            "peers wait for the drained ranks ({})",
            routing.label()
        );
    }
}

#[test]
fn failed_rank_stalls_peers_without_hanging_or_lying() {
    // permanently fail rank 3's node before it can run: the collective can
    // never finish, the budgeted runner must say so, and progress must be
    // exactly the steps that don't depend on the dead rank
    let workload = TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 8, 2);
    let mut cfg = collective_config(workload, RoutingKind::Base);
    // block placement: rank 3 lives on node 3
    cfg.faults = FaultPlan::new().node_fail(10, NodeId(3), NodeId(70));
    cfg.validate().expect("fault plan is valid");
    let mut net = Network::new(cfg);
    assert_eq!(
        net.run_until_tasks_complete(20_000),
        None,
        "a dead rank must not complete"
    );
    let task = net.task().expect("workload configured");
    assert!(!task.is_complete());
    assert!(
        task.steps_completed() < task.total_steps(),
        "some steps must remain incomplete"
    );
    // live neighbours piled up stall cycles waiting on the dead rank
    assert!(net.metrics().rank_stall_cycles() > 0);
}
