//! End-to-end integration tests asserting the paper's *qualitative* claims on
//! a scaled-down Dragonfly.
//!
//! These are the statements the evaluation section (Figures 5–9) rests on;
//! absolute numbers differ from the paper because the network is smaller and
//! the link latencies shortened, but the orderings and the saturation points
//! must hold.

use contention_dragonfly::prelude::*;

fn steady(
    routing: RoutingKind,
    pattern: PatternKind,
    load: f64,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> SteadyStateReport {
    let config = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(routing)
        .pattern(pattern)
        .offered_load(load)
        .warmup_cycles(warmup)
        .measurement_cycles(measure)
        .seed(seed)
        .build()
        .expect("valid configuration");
    SteadyStateExperiment::new(config).run()
}

#[test]
fn min_has_the_lowest_latency_under_light_uniform_traffic() {
    // Figure 5a, low-load region: MIN never misroutes, so it sets the latency
    // floor; Base matches it because contention counters stay below the
    // threshold; OLM misroutes occasionally and pays extra hops.
    let min = steady(
        RoutingKind::Minimal,
        PatternKind::Uniform,
        0.1,
        1_000,
        2_000,
        1,
    );
    let base = steady(
        RoutingKind::Base,
        PatternKind::Uniform,
        0.1,
        1_000,
        2_000,
        1,
    );
    let val = steady(
        RoutingKind::Valiant,
        PatternKind::Uniform,
        0.1,
        1_000,
        2_000,
        1,
    );
    assert!(min.delivered_packets > 100);
    assert!(
        base.avg_packet_latency <= min.avg_packet_latency * 1.10,
        "Base ({:.1}) must track MIN ({:.1}) at low uniform load",
        base.avg_packet_latency,
        min.avg_packet_latency
    );
    assert!(
        val.avg_packet_latency > min.avg_packet_latency * 1.2,
        "VAL ({:.1}) always pays the longer path versus MIN ({:.1})",
        val.avg_packet_latency,
        min.avg_packet_latency
    );
    assert_eq!(min.global_misroute_fraction, 0.0);
    assert!(base.global_misroute_fraction < 0.2);
}

#[test]
fn min_throughput_collapses_under_adversarial_traffic() {
    // Figure 5b: under ADV+1 the single global link between consecutive
    // groups caps minimal routing at 1/(a*p) phits/(node·cycle).
    let limit = DragonflyParams::small().adversarial_min_throughput_limit();
    let min = steady(
        RoutingKind::Minimal,
        PatternKind::Adversarial { offset: 1 },
        0.4,
        2_000,
        3_000,
        1,
    );
    assert!(
        min.accepted_load < limit * 2.0,
        "MIN accepted {:.3} but the theoretical cap is {:.3}",
        min.accepted_load,
        limit
    );
    assert!(
        min.accepted_load < 0.4 * 0.8,
        "MIN must accept far less than offered under ADV+1"
    );
}

#[test]
fn nonminimal_routing_beats_min_under_adversarial_traffic() {
    // Figure 5b: VAL and the adaptive mechanisms sustain several times the
    // minimal-routing throughput under ADV+1.
    let load = 0.35;
    let min = steady(
        RoutingKind::Minimal,
        PatternKind::Adversarial { offset: 1 },
        load,
        2_000,
        3_000,
        2,
    );
    for routing in [RoutingKind::Valiant, RoutingKind::Base, RoutingKind::Olm] {
        let r = steady(
            routing,
            PatternKind::Adversarial { offset: 1 },
            load,
            2_000,
            3_000,
            2,
        );
        assert!(
            r.accepted_load > min.accepted_load * 1.5,
            "{} accepted {:.3}, MIN accepted {:.3}: nonminimal routing must win under ADV+1",
            routing.label(),
            r.accepted_load,
            min.accepted_load
        );
    }
}

#[test]
fn contention_mechanisms_misroute_nearly_everything_under_heavy_adv() {
    // Figure 7b / §VI-C: once the adversarial pattern is established and the
    // load is high, (nearly) all inter-group traffic is diverted.
    let base = steady(
        RoutingKind::Base,
        PatternKind::Adversarial { offset: 1 },
        0.30,
        3_000,
        3_000,
        3,
    );
    assert!(base.delivered_packets > 200);
    assert!(
        base.global_misroute_fraction > 0.5,
        "Base should misroute most packets under saturated ADV+1, got {:.2}",
        base.global_misroute_fraction
    );
}

#[test]
fn base_matches_adaptive_baselines_throughput_under_adv() {
    // Figure 5b: the throughput of Base/Hybrid/ECtN is on par with OLM.
    let load = 0.40;
    let olm = steady(
        RoutingKind::Olm,
        PatternKind::Adversarial { offset: 1 },
        load,
        2_000,
        3_000,
        4,
    );
    for routing in [RoutingKind::Base, RoutingKind::Hybrid, RoutingKind::Ectn] {
        let r = steady(
            routing,
            PatternKind::Adversarial { offset: 1 },
            load,
            2_000,
            3_000,
            4,
        );
        assert!(
            r.accepted_load > olm.accepted_load * 0.8,
            "{} accepted {:.3} versus OLM {:.3}: contention mechanisms must stay competitive",
            routing.label(),
            r.accepted_load,
            olm.accepted_load
        );
    }
}

#[test]
fn uniform_traffic_throughput_is_not_sacrificed() {
    // Figure 5a, throughput graph: Base/ECtN stay close to MIN and OLM at
    // high uniform load.
    let load = 0.6;
    let min = steady(
        RoutingKind::Minimal,
        PatternKind::Uniform,
        load,
        2_000,
        3_000,
        5,
    );
    let base = steady(
        RoutingKind::Base,
        PatternKind::Uniform,
        load,
        2_000,
        3_000,
        5,
    );
    assert!(
        base.accepted_load > min.accepted_load * 0.85,
        "Base accepted {:.3} versus MIN {:.3} under uniform load {load}",
        base.accepted_load,
        min.accepted_load
    );
}

#[test]
fn adv_h_pattern_also_benefits_from_local_misrouting() {
    // Figure 5c: ADV+h additionally saturates local links; the adaptive
    // mechanisms still deliver much more than MIN.
    let h = DragonflyParams::small().h;
    let load = 0.30;
    let min = steady(
        RoutingKind::Minimal,
        PatternKind::Adversarial { offset: h },
        load,
        2_000,
        3_000,
        6,
    );
    let base = steady(
        RoutingKind::Base,
        PatternKind::Adversarial { offset: h },
        load,
        2_000,
        3_000,
        6,
    );
    assert!(
        base.accepted_load > min.accepted_load,
        "Base ({:.3}) must beat MIN ({:.3}) under ADV+h",
        base.accepted_load,
        min.accepted_load
    );
    // local misrouting must actually be exercised by this pattern
    assert!(
        base.local_misroute_fraction > 0.0,
        "ADV+h should trigger at least some local detours"
    );
}

#[test]
fn transient_adaptation_is_faster_with_contention_counters() {
    // Figure 7: after a UN→ADV+1 change, Base commits to misrouting much
    // sooner than the credit-based OLM.
    let switch_at = 2_000u64;
    let follow = 1_500u64;
    let run = |routing: RoutingKind| -> TransientReport {
        let schedule = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            switch_at,
        );
        // The small test network has only p=2 injection ports, so the
        // auto-calibrated threshold sits exactly at the injection-port demand
        // limit; use the lower end of the valid range (as §VI-A recommends
        // favouring adversarial latency) so the adaptation-speed comparison
        // reflects the mechanism rather than the scaled-down geometry.
        let routing_config = df_routing::RoutingConfig::calibrated_for(
            &DragonflyParams::small(),
            &NetworkConfig::fast_test().vcs,
        )
        .with_contention_threshold(3);
        let config = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .routing_config(routing_config)
            .schedule(schedule)
            .offered_load(0.25)
            .warmup_cycles(switch_at)
            .measurement_cycles(follow)
            .seed(7)
            .build()
            .expect("valid configuration");
        TransientExperiment::new(config, follow).run()
    };
    let base = run(RoutingKind::Base);
    let olm = run(RoutingKind::Olm);
    // Base must commit to misrouting quickly once the pattern turns
    // adversarial (the paper reports tens of cycles; allow slack for the
    // scaled-down network where the contention threshold sits right at the
    // injection-port demand).
    let base_reach = base.misroute_reaches(50.0);
    assert!(
        matches!(base_reach, Some(t) if t <= 800),
        "Base must reach 50% misrouting shortly after the adversarial switch, got {base_reach:?}"
    );
    // ... and before the switch it was routing (mostly) minimally, unlike the
    // credit-based OLM which misroutes opportunistically even under UN.
    let base_before = base.mean_misroute_between(-1_500, 0);
    assert!(
        base_before < 40.0,
        "Base should rarely misroute under uniform traffic, got {base_before:.0}%"
    );
    // During the adaptation window Base must not suffer a larger latency
    // excursion than the credit-based OLM (the paper's Figure 7a shows the
    // opposite, credit triggers needing hundreds of cycles to react).
    let base_spike = base.mean_latency_between(0, 400);
    let olm_spike = olm.mean_latency_between(0, 400);
    assert!(
        base_spike <= olm_spike * 1.25,
        "Base adaptation spike ({base_spike:.0}) must not exceed OLM's ({olm_spike:.0}) by much"
    );
    // and in steady state after the change, Base misroutes a large share of
    // its traffic (at this moderate load part of it still fits minimally)
    assert!(
        base.mean_misroute_between(500, 1_500) > 35.0,
        "Base should misroute a large share of traffic once ADV+1 is established, got {:.0}%",
        base.mean_misroute_between(500, 1_500)
    );
}

#[test]
fn latency_recovers_to_adv_steady_state_after_the_transient() {
    // §VI-C / Figures 7–9: the adaptive mechanisms do not merely survive a
    // UN→ADV+1 phase change — after the adaptation window their latency
    // settles back to the *steady-state* ADV+1 level. A mechanism that kept
    // oscillating or stuck in a congested regime would fail this.
    let switch_at = 2_000u64;
    let follow = 2_000u64;
    let load = 0.25;
    for routing in [RoutingKind::Base, RoutingKind::Ectn] {
        let routing_config = RoutingConfig::calibrated_for(
            &DragonflyParams::small(),
            &NetworkConfig::fast_test().vcs,
        )
        .with_contention_threshold(3);
        let steady_cfg = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .routing_config(routing_config)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(load)
            .warmup_cycles(switch_at)
            .measurement_cycles(follow)
            .seed(7)
            .build()
            .expect("valid configuration");
        let steady = SteadyStateExperiment::new(steady_cfg).run();
        let schedule = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            switch_at,
        );
        let transient_cfg = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .routing_config(routing_config)
            .schedule(schedule)
            .offered_load(load)
            .warmup_cycles(switch_at)
            .measurement_cycles(follow)
            .seed(7)
            .build()
            .expect("valid configuration");
        let report = TransientExperiment::new(transient_cfg, follow).run();
        let late = report.mean_latency_between(1_000, 2_000);
        assert!(
            late.is_finite() && late > 0.0,
            "{}: the late window must contain deliveries",
            routing.label()
        );
        assert!(
            late <= steady.avg_packet_latency * 1.25 && late >= steady.avg_packet_latency * 0.75,
            "{}: latency {:.1} one adaptation window after the switch must settle within \
             25% of the steady-state ADV+1 latency {:.1}",
            routing.label(),
            late,
            steady.avg_packet_latency
        );
        // and the mechanism must actually be in its adapted regime there,
        // misrouting a substantial share of traffic
        assert!(
            report.mean_misroute_between(1_000, 2_000) > 35.0,
            "{}: the recovered regime must be the misrouting one, got {:.0}%",
            routing.label(),
            report.mean_misroute_between(1_000, 2_000)
        );
    }
}

#[test]
fn before_the_switch_nobody_misroutes_much() {
    // sanity for the transient harness itself: under UN at 25% load the
    // misrouting percentage is low for Base before the change.
    let switch_at = 2_000u64;
    let schedule = TrafficSchedule::switch_at(
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        switch_at,
    );
    let config = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Base)
        .schedule(schedule)
        .offered_load(0.25)
        .warmup_cycles(switch_at)
        .measurement_cycles(500)
        .seed(8)
        .build()
        .expect("valid configuration");
    let report = TransientExperiment::new(config, 500).run();
    let before = report.mean_misroute_between(-1_500, 0);
    assert!(
        before < 30.0,
        "uniform traffic should rarely trigger misrouting, got {before:.0}%"
    );
}

// ---------------------------------------------------------------------------
// PR 5: failure-aware routing
// ---------------------------------------------------------------------------

/// Cycles until throughput is durably restored to ≥90% of the pre-fault
/// steady state: the earliest post-fault instant from which the cumulative
/// delivery rate stays at or above 90% of the rate measured before the
/// fault, capped at `horizon` when it never does.
fn restore_cycles_after_gateway_loss(routing: RoutingKind, seed: u64, horizon: i64) -> i64 {
    let topo = Dragonfly::new(DragonflyParams::small());
    let (gw01, port01) = df_sim::FaultPlan::global_link_between(&topo, GroupId(0), GroupId(1));
    let (gw12, port12) = df_sim::FaultPlan::global_link_between(&topo, GroupId(1), GroupId(2));
    let config = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(routing)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .offered_load(0.25)
        .warmup_cycles(200)
        .measurement_cycles(1_600)
        .seed(seed)
        // the adversarial hot path loses its gateway links at cycle 500
        .faults(
            df_sim::FaultPlan::new()
                .link_down(500, gw01, port01)
                .link_down(500, gw12, port12),
        )
        .build()
        .expect("valid configuration");
    let mut net = Network::new(config);
    net.run_cycles(1_800);
    let series = net.metrics().delivery_count_series();
    let fault_rel = 300i64; // series origin is the warm-up end (200)
    let pre: Vec<u64> = series
        .iter()
        .filter(|(t, _)| *t >= 60 && *t < fault_rel)
        .map(|(_, n)| *n)
        .collect();
    let bin = net.metrics().series_bin_width() as f64;
    let pre_rate = pre.iter().sum::<u64>() as f64 / (pre.len() as f64 * bin);
    let mut cum = 0u64;
    let mut ratios: Vec<(i64, f64)> = Vec::new();
    for (t, n) in series
        .iter()
        .filter(|(t, _)| *t >= fault_rel && *t - fault_rel < horizon)
    {
        cum += n;
        let elapsed = (t - fault_rel) as f64 + bin;
        ratios.push((
            t - fault_rel + bin as i64,
            cum as f64 / (pre_rate * elapsed),
        ));
    }
    let mut answer = horizon;
    for i in (0..ratios.len()).rev() {
        if ratios[i].1 < 0.9 {
            break;
        }
        answer = ratios[i].0;
    }
    answer
}

#[test]
fn linkstate_dissemination_restores_throughput_faster_than_gateway_discovery() {
    // The failure-aware-routing claim: when the adversarial hot path loses
    // its gateway links, the mechanisms that disseminate link state through
    // their existing control plane (ECtN's periodic broadcast, PB's
    // every-cycle piggybacking) steer injections away at the *source* and
    // restore ≥90% of the pre-fault steady-state delivery rate strictly
    // sooner than gateway discovery (Base), which keeps committing traffic
    // towards the dead gateways until backpressure — and the unroutable
    // discards behind it — throttle the sources. Aggregated over a fixed
    // seed panel so the ordering reflects the mechanism, not one lucky run.
    let horizon = 1_200i64;
    let seeds = [7u64, 11, 23, 42, 99];
    let total = |routing: RoutingKind| -> i64 {
        seeds
            .iter()
            .map(|&s| restore_cycles_after_gateway_loss(routing, s, horizon))
            .sum()
    };
    let base = total(RoutingKind::Base);
    let ectn = total(RoutingKind::Ectn);
    let pb = total(RoutingKind::PiggyBacking);
    assert!(
        ectn < base,
        "ECtN's link-state broadcast must restore throughput strictly faster \
         than Base's gateway discovery ({ectn} vs {base} summed cycles)"
    );
    assert!(
        pb < base,
        "PB's piggybacked link state must restore throughput strictly faster \
         than Base's gateway discovery ({pb} vs {base} summed cycles)"
    );
}
