//! Golden regression suite for the scenario subsystem.
//!
//! Pins the complete routing × pattern matrix (every routing mechanism under
//! every traffic pattern), the new injection processes, phased scenarios and
//! the scenario-matrix runner's per-cell seeding to literal fingerprints.
//! Any change to pattern semantics, injector randomness, phase lowering,
//! cell seeding or kernel event ordering shows up here as a diff in review
//! rather than silently shifting every future result.
//!
//! If a test in this file fails after an intentional semantics change,
//! regenerate the tables with
//!
//! ```text
//! cargo test --release --test scenario_matrix -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants in the same commit, calling the update
//! out in the PR description (same contract as `tests/determinism.rs`).
//!
//! The configurations deliberately do not set a [`KernelMode`], so the env
//! default applies and CI exercises the whole suite under both kernels —
//! which must be bit-for-bit identical.

use contention_dragonfly::prelude::*;

const LOAD: f64 = 0.2;
const SEED: u64 = 11;

/// Every pattern the matrix covers, with stable labels.
fn all_patterns() -> Vec<PatternKind> {
    vec![
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.5,
        },
        PatternKind::Permutation { seed: 17 },
        PatternKind::Hotspot {
            hotspots: 4,
            fraction: 0.5,
        },
        PatternKind::BitComplement,
        PatternKind::BitReversal,
        PatternKind::GroupLocal { local_fraction: 0.6 },
    ]
}

fn base_builder() -> df_sim::SimulationConfigBuilder {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .offered_load(LOAD)
        .warmup_cycles(200)
        .measurement_cycles(400)
        .seed(SEED)
}

/// `(delivered packets in the window, final cycle after drain, mean-latency
/// f64 bits)` — the fingerprint every golden table pins.
fn fingerprint(cfg: SimulationConfig) -> (u64, u64, u64) {
    let mut net = Network::new(cfg.clone());
    net.run_cycles(cfg.warmup_cycles);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(cfg.measurement_cycles);
    assert!(net.drain(100_000), "golden runs must drain");
    let summary = net.metrics().window_summary();
    (
        summary.delivered_packets,
        net.cycle(),
        summary.avg_packet_latency.to_bits(),
    )
}

// ---------------------------------------------------------------------------
// 1. routing × pattern golden matrix
// ---------------------------------------------------------------------------

/// Pinned on `DragonflyParams::small()` + `NetworkConfig::fast_test()`,
/// load 0.2, seed 11, warmup 200 + measure 400 + drain.
#[rustfmt::skip]
const GOLDEN_ROUTING_PATTERN: &[(&str, &str, u64, u64, u64)] = &[
    // (routing, pattern, delivered_window, final_cycle, latency_bits)
    ("MIN", "UN", 805, 652, 0x40469853F48D328F),
    ("MIN", "ADV+1", 911, 1137, 0x4070211244011FC1),
    ("MIN", "MIX(ADV+1,50%UN)", 824, 772, 0x405002F392A409F2),
    ("MIN", "PERM(17)", 809, 665, 0x404761C7AC75B73A),
    ("MIN", "HOT(4x50%)", 873, 1201, 0x406D38F652B1B44E),
    ("MIN", "BITCOMP", 888, 1125, 0x406CF322983759ED),
    ("MIN", "BITREV", 816, 656, 0x4047257D7D7D7D77),
    ("MIN", "LOC(60%)", 782, 653, 0x404112D2D2D2D2D3),
    ("VAL", "UN", 885, 703, 0x40565E02E4850FEB),
    ("VAL", "ADV+1", 883, 706, 0x405708C52566578F),
    ("VAL", "MIX(ADV+1,50%UN)", 882, 705, 0x4056F01BDD2B8999),
    ("VAL", "PERM(17)", 885, 708, 0x40569F9A2DB43662),
    ("VAL", "HOT(4x50%)", 922, 1241, 0x4070A04B85D4AF7E),
    ("VAL", "BITCOMP", 884, 704, 0x4056D4B4B4B4B4B2),
    ("VAL", "BITREV", 878, 700, 0x4055845FA2B27127),
    ("VAL", "LOC(60%)", 877, 697, 0x4055828DDD8E284D),
    ("PB", "UN", 809, 689, 0x4048C89F7C5C6689),
    ("PB", "ADV+1", 860, 691, 0x40521404C3464050),
    ("PB", "MIX(ADV+1,50%UN)", 827, 690, 0x404CBFEC304A4AEE),
    ("PB", "PERM(17)", 819, 680, 0x404AA62262262260),
    ("PB", "HOT(4x50%)", 874, 1201, 0x406D0F574939FED5),
    ("PB", "BITCOMP", 840, 690, 0x4050B3A83A83A843),
    ("PB", "BITREV", 824, 692, 0x404AE9027C4597A2),
    ("PB", "LOC(60%)", 784, 691, 0x4041BE87D6343EB2),
    ("OLM", "UN", 835, 687, 0x404F17743247BDC7),
    ("OLM", "ADV+1", 844, 688, 0x40508BE7BC0E8F1F),
    ("OLM", "MIX(ADV+1,50%UN)", 839, 681, 0x40503035B3B7FD90),
    ("OLM", "PERM(17)", 841, 693, 0x40500D2A4FC0AF52),
    ("OLM", "HOT(4x50%)", 890, 1201, 0x406DD3F47E8FD1F4),
    ("OLM", "BITCOMP", 844, 701, 0x405123A3CA9DB9A6),
    ("OLM", "BITREV", 835, 686, 0x40502242D5FF6308),
    ("OLM", "LOC(60%)", 790, 659, 0x40443DE4C79D7D13),
    ("Base", "UN", 805, 652, 0x40469853F48D328F),
    ("Base", "ADV+1", 886, 765, 0x405A8D4A8BD8B448),
    ("Base", "MIX(ADV+1,50%UN)", 824, 716, 0x404E5A409F1165E6),
    ("Base", "PERM(17)", 809, 665, 0x404761C7AC75B73A),
    ("Base", "HOT(4x50%)", 873, 1201, 0x406D38F652B1B44E),
    ("Base", "BITCOMP", 879, 757, 0x4059395FD166CEC9),
    ("Base", "BITREV", 816, 656, 0x4047257D7D7D7D77),
    ("Base", "LOC(60%)", 782, 653, 0x404112D2D2D2D2D3),
    ("Hybrid", "UN", 834, 691, 0x404E74A4870F590B),
    ("Hybrid", "ADV+1", 841, 687, 0x405071D86D9575C9),
    ("Hybrid", "MIX(ADV+1,50%UN)", 833, 686, 0x40500DD45C3266A4),
    ("Hybrid", "PERM(17)", 836, 685, 0x404FF32385830FE5),
    ("Hybrid", "HOT(4x50%)", 887, 1201, 0x406D1E5729458E4A),
    ("Hybrid", "BITCOMP", 842, 687, 0x4050FB9769327864),
    ("Hybrid", "BITREV", 837, 681, 0x404FC4349B5FBB80),
    ("Hybrid", "LOC(60%)", 791, 664, 0x4043F38A31D738A3),
    ("ECtN", "UN", 805, 652, 0x40469853F48D328F),
    ("ECtN", "ADV+1", 886, 765, 0x405A8D4A8BD8B448),
    ("ECtN", "MIX(ADV+1,50%UN)", 824, 716, 0x404E5A409F1165E6),
    ("ECtN", "PERM(17)", 809, 665, 0x404761C7AC75B73A),
    ("ECtN", "HOT(4x50%)", 873, 1201, 0x406D38F652B1B44E),
    ("ECtN", "BITCOMP", 879, 757, 0x4059395FD166CEC9),
    ("ECtN", "BITREV", 816, 656, 0x4047257D7D7D7D77),
    ("ECtN", "LOC(60%)", 782, 653, 0x404112D2D2D2D2D3),
];

#[test]
fn golden_routing_pattern_matrix() {
    let mut expected = GOLDEN_ROUTING_PATTERN.iter();
    for routing in RoutingKind::ALL {
        for pattern in all_patterns() {
            let cfg = base_builder()
                .routing(routing)
                .pattern(pattern)
                .build()
                .expect("valid configuration");
            let (delivered, final_cycle, latency_bits) = fingerprint(cfg);
            let &(er, ep, ed, ec, el) = expected
                .next()
                .expect("golden table has one row per routing x pattern");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(ep, pattern.label(), "table order drifted");
            assert_eq!(
                (delivered, final_cycle, latency_bits),
                (ed, ec, el),
                "{} under {} diverged from the pinned fingerprint",
                routing.label(),
                pattern.label()
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

// ---------------------------------------------------------------------------
// 2. injector and phased-scenario goldens
// ---------------------------------------------------------------------------

/// The non-Bernoulli injectors and multi-phase scenarios the golden suite
/// covers, each under two contention-based routings.
fn special_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::named("UN-bursty")
            .injection(InjectionKind::Bursty {
                mean_on: 50.0,
                mean_off: 50.0,
            })
            .hold(PatternKind::Uniform),
        Scenario::named("UN-ramp")
            .injection(InjectionKind::Ramp {
                start_fraction: 0.0,
                ramp_cycles: 300,
            })
            .hold(PatternKind::Uniform),
        Scenario::transient(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            300,
        ),
        Scenario::named("UN-storm-UN")
            .phase(PatternKind::Uniform, 250)
            .phase_at_load(PatternKind::Adversarial { offset: 1 }, 0.35, 200)
            .hold(PatternKind::Uniform),
    ]
}

#[rustfmt::skip]
const GOLDEN_SPECIAL: &[(&str, &str, u64, u64, u64)] = &[
    // (scenario, routing, delivered_window, final_cycle, latency_bits)
    ("UN-bursty", "Base", 824, 648, 0x4046E5979C95204C),
    ("UN-bursty", "ECtN", 824, 648, 0x4046E5979C95204C),
    ("UN-ramp", "Base", 748, 657, 0x40467F24F66AC7DF),
    ("UN-ramp", "ECtN", 748, 657, 0x40467F24F66AC7DF),
    ("UN->ADV+1", "Base", 805, 785, 0x4053B98F6C713667),
    ("UN->ADV+1", "ECtN", 805, 785, 0x4053B98F6C713667),
    ("UN-storm-UN", "Base", 1067, 663, 0x4054D492D588846B),
    ("UN-storm-UN", "ECtN", 1067, 663, 0x4054D492D588846B),
];

#[test]
fn golden_injectors_and_phases() {
    let mut expected = GOLDEN_SPECIAL.iter();
    for scenario in special_scenarios() {
        for routing in [RoutingKind::Base, RoutingKind::Ectn] {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .expect("valid configuration");
            let (delivered, final_cycle, latency_bits) = fingerprint(cfg);
            let &(es, er, ed, ec, el) = expected
                .next()
                .expect("golden table has one row per scenario x routing");
            assert_eq!(es, scenario.name, "table order drifted");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(
                (delivered, final_cycle, latency_bits),
                (ed, ec, el),
                "{} under {} diverged from the pinned fingerprint",
                routing.label(),
                scenario.name
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

// ---------------------------------------------------------------------------
// 3. matrix-runner golden: per-cell seeds and results
// ---------------------------------------------------------------------------

fn golden_matrix() -> ScenarioMatrix {
    ScenarioMatrix {
        scenarios: vec![
            Scenario::steady(PatternKind::Uniform),
            Scenario::steady(PatternKind::Adversarial { offset: 1 }),
            Scenario::transient(
                PatternKind::Uniform,
                PatternKind::Adversarial { offset: 1 },
                300,
            ),
        ],
        loads: vec![0.1, 0.3],
        routings: vec![
            RoutingKind::Minimal,
            RoutingKind::Olm,
            RoutingKind::Base,
            RoutingKind::Ectn,
        ],
        seeds_per_cell: 1,
        ..ScenarioMatrix::new(base_builder().build().expect("valid template"))
    }
}

#[rustfmt::skip]
const GOLDEN_MATRIX: &[(&str, &str, u64, u64, u64)] = &[
    // (scenario, routing@load, cell_seed, delivered_window, latency_bits)
    ("UN", "MIN@0.10", 9503925850839871422, 339, 0x4045E7750CD67750),
    ("UN", "OLM@0.10", 13767144980073157928, 367, 0x4049583D625AAE65),
    ("UN", "Base@0.10", 5029147664225670704, 390, 0x4045B0E70E70E70D),
    ("UN", "ECtN@0.10", 3240651478468372994, 354, 0x4045949C34115B1D),
    ("UN", "MIN@0.30", 8802558392465989275, 1088, 0x4047703C3C3C3C3A),
    ("UN", "OLM@0.30", 3718903258026593164, 1028, 0x40514936C936C934),
    ("UN", "Base@0.30", 12181222327205972356, 1066, 0x40474EC4EC4EC4E5),
    ("UN", "ECtN@0.30", 5586660493715374994, 1059, 0x4047F02A8BB969A5),
    ("ADV+1", "MIN@0.10", 11141797255196390522, 383, 0x404E8AB1CBDD3E2A),
    ("ADV+1", "OLM@0.10", 12456546649523928099, 369, 0x404E7597EF597EF8),
    ("ADV+1", "Base@0.10", 16949615000871316227, 358, 0x404C6979907269D6),
    ("ADV+1", "ECtN@0.10", 5267901239321830844, 344, 0x404B653594D6535B),
    ("ADV+1", "MIN@0.30", 12801827229539339074, 450, 0x406AA44444444447),
    ("ADV+1", "OLM@0.30", 2312257069638493140, 1116, 0x40521151A9BFC552),
    ("ADV+1", "Base@0.30", 10216815209178313974, 994, 0x405B7647151E63F0),
    ("ADV+1", "ECtN@0.30", 14014122248701284430, 1070, 0x405AF2A96401E9FC),
    ("UN->ADV+1", "MIN@0.10", 4276764928123989989, 329, 0x4049149EBC4DCFC6),
    ("UN->ADV+1", "OLM@0.10", 16195438644560804299, 328, 0x404CB512BB512BB7),
    ("UN->ADV+1", "Base@0.10", 7285335616192603005, 367, 0x4049059493E14EC9),
    ("UN->ADV+1", "ECtN@0.10", 10177911790607175144, 383, 0x4049E498659910B4),
    ("UN->ADV+1", "MIN@0.30", 11737526883106114248, 679, 0x4052CE3B91E89FDE),
    ("UN->ADV+1", "OLM@0.30", 14689851459392578068, 1133, 0x4051B71334A56501),
    ("UN->ADV+1", "Base@0.30", 8445735730378540923, 893, 0x4052761C1814A3F8),
    ("UN->ADV+1", "ECtN@0.30", 380644212347825811, 942, 0x4052902B7B614A77),
];

#[test]
fn golden_matrix_runner_cells() {
    let cells = run_matrix(&golden_matrix(), 4);
    assert_eq!(cells.len(), GOLDEN_MATRIX.len(), "matrix shape changed");
    for (cell, &(es, ecol, eseed, ed, el)) in cells.iter().zip(GOLDEN_MATRIX) {
        let col = format!("{}@{:.2}", cell.key.routing.label(), cell.key.load);
        assert_eq!(es, cell.key.scenario, "cell order drifted");
        assert_eq!(ecol, col, "cell order drifted");
        assert_eq!(
            cell.key.seed, eseed,
            "cell seeding changed for {es}/{col}: the (base seed, indices) -> seed mapping is a compatibility contract"
        );
        assert_eq!(
            (
                cell.report.delivered_packets,
                cell.report.avg_packet_latency.to_bits()
            ),
            (ed, el),
            "{es}/{col} diverged from the pinned fingerprint"
        );
    }
}

// ---------------------------------------------------------------------------
// regeneration helper (ignored; see the module docs)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "prints fresh golden tables; run with --ignored --nocapture"]
fn regenerate_golden_tables() {
    println!("// (routing, pattern, delivered_window, final_cycle, latency_bits)");
    for routing in RoutingKind::ALL {
        for pattern in all_patterns() {
            let cfg = base_builder()
                .routing(routing)
                .pattern(pattern)
                .build()
                .unwrap();
            let (d, c, l) = fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {:#018X}),",
                routing.label(),
                pattern.label(),
                d,
                c,
                l
            );
        }
    }
    println!("// (scenario, routing, delivered_window, final_cycle, latency_bits)");
    for scenario in special_scenarios() {
        for routing in [RoutingKind::Base, RoutingKind::Ectn] {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .unwrap();
            let (d, c, l) = fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {:#018X}),",
                scenario.name,
                routing.label(),
                d,
                c,
                l
            );
        }
    }
    println!("// (scenario, routing@load, cell_seed, delivered_window, latency_bits)");
    for cell in run_matrix(&golden_matrix(), 4) {
        println!(
            "    (\"{}\", \"{}@{:.2}\", {}, {}, {:#018X}),",
            cell.key.scenario,
            cell.key.routing.label(),
            cell.key.load,
            cell.key.seed,
            cell.report.delivered_packets,
            cell.report.avg_packet_latency.to_bits()
        );
    }
}
