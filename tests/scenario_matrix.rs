//! Golden regression suite for the scenario subsystem.
//!
//! Pins the complete routing × pattern matrix (every routing mechanism under
//! every traffic pattern), the new injection processes, phased scenarios and
//! the scenario-matrix runner's per-cell seeding to literal fingerprints.
//! Any change to pattern semantics, injector randomness, phase lowering,
//! cell seeding or kernel event ordering shows up here as a diff in review
//! rather than silently shifting every future result.
//!
//! The corpus itself (tables, patterns, fingerprint definition) lives in
//! `tests/common/golden_corpus.rs` so `tests/kernel_equivalence.rs` can
//! replay the *same* pinned tables under the parallel kernel.
//!
//! If a test in this file fails after an intentional semantics change,
//! regenerate the tables with
//!
//! ```text
//! cargo test --release --test scenario_matrix -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants into `tests/common/golden_corpus.rs` in
//! the same commit, calling the update out in the PR description (same
//! contract as `tests/determinism.rs`).
//!
//! The configurations deliberately do not set a [`KernelMode`], so the env
//! default applies and CI exercises the whole suite under every kernel —
//! which must be bit-for-bit identical.
//!
//! [`KernelMode`]: contention_dragonfly::prelude::KernelMode

use contention_dragonfly::prelude::*;

#[path = "common/golden_corpus.rs"]
#[allow(dead_code)] // the collective helpers are used by tests/collectives.rs
mod golden_corpus;

use golden_corpus::{
    all_patterns, base_builder, churn_fingerprint, churn_routings, churn_scenarios,
    collective_fingerprint, fault_fingerprint, fault_routings, fault_scenarios, fingerprint,
    megafly_base_builder, megafly_collective_config, megafly_collective_workloads,
    megafly_fault_routings, megafly_fault_scenarios, megafly_patterns, megafly_routings,
    special_scenarios, GOLDEN_CHURN, GOLDEN_FAULTS, GOLDEN_MEGAFLY, GOLDEN_MEGAFLY_COLLECTIVES,
    GOLDEN_MEGAFLY_FAULTS, GOLDEN_ROUTING_PATTERN, GOLDEN_SPECIAL,
};

// ---------------------------------------------------------------------------
// 1. routing × pattern golden matrix
// ---------------------------------------------------------------------------

#[test]
fn golden_routing_pattern_matrix() {
    let mut expected = GOLDEN_ROUTING_PATTERN.iter();
    for routing in RoutingKind::ALL {
        for pattern in all_patterns() {
            let cfg = base_builder()
                .routing(routing)
                .pattern(pattern)
                .build()
                .expect("valid configuration");
            let (delivered, final_cycle, latency_bits) = fingerprint(cfg);
            let &(er, ep, ed, ec, el) = expected
                .next()
                .expect("golden table has one row per routing x pattern");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(ep, pattern.label(), "table order drifted");
            assert_eq!(
                (delivered, final_cycle, latency_bits),
                (ed, ec, el),
                "{} under {} diverged from the pinned fingerprint",
                routing.label(),
                pattern.label()
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

// ---------------------------------------------------------------------------
// 2. injector and phased-scenario goldens
// ---------------------------------------------------------------------------

#[test]
fn golden_injectors_and_phases() {
    let mut expected = GOLDEN_SPECIAL.iter();
    for scenario in special_scenarios() {
        for routing in [RoutingKind::Base, RoutingKind::Ectn] {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .expect("valid configuration");
            let (delivered, final_cycle, latency_bits) = fingerprint(cfg);
            let &(es, er, ed, ec, el) = expected
                .next()
                .expect("golden table has one row per scenario x routing");
            assert_eq!(es, scenario.name, "table order drifted");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(
                (delivered, final_cycle, latency_bits),
                (ed, ec, el),
                "{} under {} diverged from the pinned fingerprint",
                routing.label(),
                scenario.name
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

// ---------------------------------------------------------------------------
// 2b. fault-corpus goldens
// ---------------------------------------------------------------------------

#[test]
fn golden_fault_corpus() {
    let mut expected = GOLDEN_FAULTS.iter();
    for scenario in fault_scenarios() {
        for routing in fault_routings() {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .expect("valid configuration");
            let got = fault_fingerprint(cfg);
            let &(es, er, ed, edrop, einf, ec, el) = expected
                .next()
                .expect("golden table has one row per scenario x routing");
            assert_eq!(es, scenario.name, "table order drifted");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(
                got,
                (ed, edrop, einf, ec, el),
                "{} under {} diverged from the pinned fault fingerprint",
                routing.label(),
                scenario.name
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

// ---------------------------------------------------------------------------
// 2c. churn-corpus goldens
// ---------------------------------------------------------------------------

#[test]
fn golden_churn_corpus() {
    let mut expected = GOLDEN_CHURN.iter();
    for scenario in churn_scenarios() {
        for routing in churn_routings() {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .expect("valid configuration");
            let got = churn_fingerprint(cfg);
            let &(es, er, ed, edrop, eret, einf, ec, el) = expected
                .next()
                .expect("golden table has one row per scenario x routing");
            assert_eq!(es, scenario.name, "table order drifted");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(
                got,
                (ed, edrop, eret, einf, ec, el),
                "{} under {} diverged from the pinned churn fingerprint",
                routing.label(),
                scenario.name
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

// ---------------------------------------------------------------------------
// 2d. Megafly / Dragonfly+ corpus slice: the second `Topology` instance,
// pinned exactly like the Dragonfly tables (same clock, same seed, env
// kernel — the CI kernel matrix replays these under every kernel too).
// ---------------------------------------------------------------------------

#[test]
fn golden_megafly_routing_pattern_matrix() {
    let mut expected = GOLDEN_MEGAFLY.iter();
    for routing in megafly_routings() {
        for pattern in megafly_patterns() {
            let cfg = megafly_base_builder()
                .routing(routing)
                .pattern(pattern)
                .build()
                .expect("valid megafly configuration");
            let (delivered, final_cycle, latency_bits) = fingerprint(cfg);
            let &(er, ep, ed, ec, el) = expected
                .next()
                .expect("golden table has one row per routing x pattern");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(ep, pattern.label(), "table order drifted");
            assert_eq!(
                (delivered, final_cycle, latency_bits),
                (ed, ec, el),
                "megafly {} under {} diverged from the pinned fingerprint",
                routing.label(),
                pattern.label()
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

#[test]
fn golden_megafly_fault_corpus() {
    let mut expected = GOLDEN_MEGAFLY_FAULTS.iter();
    for scenario in megafly_fault_scenarios() {
        for routing in megafly_fault_routings() {
            let cfg = megafly_base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .expect("valid megafly fault configuration");
            let got = fault_fingerprint(cfg);
            let &(es, er, ed, edrop, einf, ec, el) = expected
                .next()
                .expect("golden table has one row per scenario x routing");
            assert_eq!(es, scenario.name, "table order drifted");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(
                got,
                (ed, edrop, einf, ec, el),
                "megafly {} under {} diverged from the pinned fault fingerprint",
                routing.label(),
                scenario.name
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

#[test]
fn golden_megafly_collective_corpus() {
    let mut expected = GOLDEN_MEGAFLY_COLLECTIVES.iter();
    for workload in megafly_collective_workloads() {
        for routing in [RoutingKind::Base, RoutingKind::Ectn] {
            let cfg = megafly_collective_config(workload.clone(), routing);
            let got = collective_fingerprint(cfg);
            let &(ew, er, edone, ed, estall, el) = expected
                .next()
                .expect("golden table has one row per workload x routing");
            assert_eq!(ew, workload.label(), "table order drifted");
            assert_eq!(er, routing.label(), "table order drifted");
            assert_eq!(
                got,
                (edone, ed, estall, el),
                "megafly {} under {} diverged from the pinned collective fingerprint",
                workload.label(),
                routing.label()
            );
        }
    }
    assert!(expected.next().is_none(), "stale rows in the golden table");
}

// ---------------------------------------------------------------------------
// 3. matrix-runner golden: per-cell seeds and results
// ---------------------------------------------------------------------------

fn golden_matrix() -> ScenarioMatrix {
    ScenarioMatrix {
        scenarios: vec![
            Scenario::steady(PatternKind::Uniform),
            Scenario::steady(PatternKind::Adversarial { offset: 1 }),
            Scenario::transient(
                PatternKind::Uniform,
                PatternKind::Adversarial { offset: 1 },
                300,
            ),
        ],
        loads: vec![0.1, 0.3],
        routings: vec![
            RoutingKind::Minimal,
            RoutingKind::Olm,
            RoutingKind::Base,
            RoutingKind::Ectn,
        ],
        seeds_per_cell: 1,
        ..ScenarioMatrix::new(base_builder().build().expect("valid template"))
    }
}

#[rustfmt::skip]
const GOLDEN_MATRIX: &[(&str, &str, u64, u64, u64)] = &[
    // (scenario, routing@load, cell_seed, delivered_window, latency_bits)
    ("UN", "MIN@0.10", 9503925850839871422, 339, 0x4045E7750CD67750),
    ("UN", "OLM@0.10", 13767144980073157928, 367, 0x4049583D625AAE65),
    ("UN", "Base@0.10", 5029147664225670704, 390, 0x4045B0E70E70E70D),
    ("UN", "ECtN@0.10", 3240651478468372994, 354, 0x4045949C34115B1D),
    ("UN", "MIN@0.30", 8802558392465989275, 1088, 0x4047703C3C3C3C3A),
    ("UN", "OLM@0.30", 3718903258026593164, 1028, 0x40514936C936C934),
    ("UN", "Base@0.30", 12181222327205972356, 1066, 0x40474EC4EC4EC4E5),
    ("UN", "ECtN@0.30", 5586660493715374994, 1059, 0x4047F02A8BB969A5),
    ("ADV+1", "MIN@0.10", 11141797255196390522, 383, 0x404E8AB1CBDD3E2A),
    ("ADV+1", "OLM@0.10", 12456546649523928099, 369, 0x404E7597EF597EF8),
    ("ADV+1", "Base@0.10", 16949615000871316227, 358, 0x404C6979907269D6),
    ("ADV+1", "ECtN@0.10", 5267901239321830844, 344, 0x404B653594D6535B),
    ("ADV+1", "MIN@0.30", 12801827229539339074, 450, 0x406AA44444444447),
    ("ADV+1", "OLM@0.30", 2312257069638493140, 1116, 0x40521151A9BFC552),
    ("ADV+1", "Base@0.30", 10216815209178313974, 994, 0x405B7647151E63F0),
    ("ADV+1", "ECtN@0.30", 14014122248701284430, 1070, 0x405AF2A96401E9FC),
    ("UN->ADV+1", "MIN@0.10", 4276764928123989989, 329, 0x4049149EBC4DCFC6),
    ("UN->ADV+1", "OLM@0.10", 16195438644560804299, 328, 0x404CB512BB512BB7),
    ("UN->ADV+1", "Base@0.10", 7285335616192603005, 367, 0x4049059493E14EC9),
    ("UN->ADV+1", "ECtN@0.10", 10177911790607175144, 383, 0x4049E498659910B4),
    ("UN->ADV+1", "MIN@0.30", 11737526883106114248, 679, 0x4052CE3B91E89FDE),
    ("UN->ADV+1", "OLM@0.30", 14689851459392578068, 1133, 0x4051B71334A56501),
    ("UN->ADV+1", "Base@0.30", 8445735730378540923, 893, 0x4052761C1814A3F8),
    ("UN->ADV+1", "ECtN@0.30", 380644212347825811, 942, 0x4052902B7B614A77),
];

#[test]
fn golden_matrix_runner_cells() {
    let cells = run_matrix(&golden_matrix(), 4);
    assert_eq!(cells.len(), GOLDEN_MATRIX.len(), "matrix shape changed");
    for (cell, &(es, ecol, eseed, ed, el)) in cells.iter().zip(GOLDEN_MATRIX) {
        let col = format!("{}@{:.2}", cell.key.routing.label(), cell.key.load);
        assert_eq!(es, cell.key.scenario, "cell order drifted");
        assert_eq!(ecol, col, "cell order drifted");
        assert_eq!(
            cell.key.seed, eseed,
            "cell seeding changed for {es}/{col}: the (base seed, indices) -> seed mapping is a compatibility contract"
        );
        assert_eq!(
            (
                cell.report.delivered_packets,
                cell.report.avg_packet_latency.to_bits()
            ),
            (ed, el),
            "{es}/{col} diverged from the pinned fingerprint"
        );
    }
}

// ---------------------------------------------------------------------------
// regeneration helper (ignored; see the module docs)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "prints fresh golden tables; run with --ignored --nocapture"]
fn regenerate_golden_tables() {
    println!("// (routing, pattern, delivered_window, final_cycle, latency_bits)");
    for routing in RoutingKind::ALL {
        for pattern in all_patterns() {
            let cfg = base_builder()
                .routing(routing)
                .pattern(pattern)
                .build()
                .unwrap();
            let (d, c, l) = fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {:#018X}),",
                routing.label(),
                pattern.label(),
                d,
                c,
                l
            );
        }
    }
    println!("// (scenario, routing, delivered_window, final_cycle, latency_bits)");
    for scenario in special_scenarios() {
        for routing in [RoutingKind::Base, RoutingKind::Ectn] {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .unwrap();
            let (d, c, l) = fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {:#018X}),",
                scenario.name,
                routing.label(),
                d,
                c,
                l
            );
        }
    }
    println!(
        "// (scenario, routing, delivered_window, dropped, in_flight, final_cycle, latency_bits)"
    );
    for scenario in fault_scenarios() {
        for routing in fault_routings() {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .unwrap();
            let (d, drop, inf, c, l) = fault_fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {}, {}, {:#018X}),",
                scenario.name,
                routing.label(),
                d,
                drop,
                inf,
                c,
                l
            );
        }
    }
    println!(
        "// (scenario, routing, delivered_window, dropped, retargeted, in_flight, final_cycle, latency_bits)"
    );
    for scenario in churn_scenarios() {
        for routing in churn_routings() {
            let cfg = base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .unwrap();
            let (d, drop, ret, inf, c, l) = churn_fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {}, {}, {}, {:#018X}),",
                scenario.name,
                routing.label(),
                d,
                drop,
                ret,
                inf,
                c,
                l
            );
        }
    }
    println!("// megafly: (routing, pattern, delivered_window, final_cycle, latency_bits)");
    for routing in megafly_routings() {
        for pattern in megafly_patterns() {
            let cfg = megafly_base_builder()
                .routing(routing)
                .pattern(pattern)
                .build()
                .unwrap();
            let (d, c, l) = fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {:#018X}),",
                routing.label(),
                pattern.label(),
                d,
                c,
                l
            );
        }
    }
    println!(
        "// megafly: (scenario, routing, delivered_window, dropped, in_flight, final_cycle, latency_bits)"
    );
    for scenario in megafly_fault_scenarios() {
        for routing in megafly_fault_routings() {
            let cfg = megafly_base_builder()
                .routing(routing)
                .scenario(&scenario)
                .build()
                .unwrap();
            let (d, drop, inf, c, l) = fault_fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {}, {}, {:#018X}),",
                scenario.name,
                routing.label(),
                d,
                drop,
                inf,
                c,
                l
            );
        }
    }
    println!(
        "// megafly: (workload, routing, completion_cycle, delivered, rank_stall_cycles, latency_bits)"
    );
    for workload in megafly_collective_workloads() {
        for routing in [RoutingKind::Base, RoutingKind::Ectn] {
            let cfg = megafly_collective_config(workload.clone(), routing);
            let (done, d, stall, l) = collective_fingerprint(cfg);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {}, {:#018X}),",
                workload.label(),
                routing.label(),
                done,
                d,
                stall,
                l
            );
        }
    }
    println!("// (scenario, routing@load, cell_seed, delivered_window, latency_bits)");
    for cell in run_matrix(&golden_matrix(), 4) {
        println!(
            "    (\"{}\", \"{}@{:.2}\", {}, {}, {:#018X}),",
            cell.key.scenario,
            cell.key.routing.label(),
            cell.key.load,
            cell.key.seed,
            cell.report.delivered_packets,
            cell.report.avg_packet_latency.to_bits()
        );
    }
}
