//! End-to-end tests of the deterministic fault-injection subsystem:
//! conservation equalities under link loss, recovery after `LinkUp`,
//! graceful router drains, drain()-clamp correctness at fault cycles, and
//! cross-kernel bit-identity of faulted runs.

use contention_dragonfly::prelude::*;
use df_sim::FaultPlan;

fn base_builder() -> df_sim::SimulationConfigBuilder {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .offered_load(0.25)
        .warmup_cycles(0)
        .measurement_cycles(600)
        .seed(7)
}

/// The exact packet/phit conservation equalities under faults:
/// `injected = delivered + in-flight + dropped-on-fault`.
fn check_fault_conservation(net: &Network) {
    assert_eq!(
        net.injected_packets_total(),
        net.metrics().delivered_packets_total()
            + net.in_flight()
            + net.metrics().dropped_on_fault_packets(),
        "packet conservation violated"
    );
    assert_eq!(
        net.injected_phits_total(),
        net.metrics().delivered_phits_total()
            + net.in_flight_phits()
            + net.metrics().dropped_on_fault_phits(),
        "phit conservation violated"
    );
}

/// Full healthy-state conservation (credits, counters, buffers) — only
/// valid once every failed link has been restored and the network drained.
fn check_full_conservation(net: &Network) {
    assert_eq!(net.in_flight(), 0);
    assert_eq!(net.in_flight_phits(), 0);
    assert_eq!(net.fault_lost_credits(), 0, "all ledger credits returned");
    assert_eq!(net.total_contention(), 0);
    let topo = net.topology();
    let params = topo.params();
    for router_id in topo.routers() {
        let router = net.router(router_id);
        for port in Port::all(params) {
            let output = router.output(port);
            for vc in 0..output.num_downstream_vcs() {
                assert_eq!(
                    output.credits(VcId(vc as u8)),
                    output.credit_capacity(VcId(vc as u8)),
                    "router {router_id} port {port} vc {vc}: credits not fully returned"
                );
            }
            assert_eq!(output.buffer_occupancy_phits(), 0);
        }
    }
}

/// The global link between two groups, as a fault target.
fn link_between(g1: u32, g2: u32) -> (RouterId, Port) {
    let topo = Dragonfly::new(DragonflyParams::small());
    FaultPlan::global_link_between(&topo, GroupId(g1), GroupId(g2))
}

#[test]
fn link_loss_drops_in_flight_phits_and_conserves_exactly() {
    // fail a busy global link mid-run, never restore it: whatever was on
    // the wire is dropped and accounted; the rest of the network keeps
    // delivering. ADV+1 concentrates every group-0 flow on the 0->1 link,
    // so traffic is guaranteed to be in flight on it at the fault cycle.
    let (gw, port) = link_between(0, 1);
    let cfg = base_builder()
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .faults(FaultPlan::new().link_down(200, gw, port))
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.run_cycles(600);
    let dropped = net.metrics().dropped_on_fault_packets();
    assert!(
        dropped > 0,
        "a busy link must have traffic in flight when it fails"
    );
    check_fault_conservation(&net);
    assert!(
        net.metrics().delivered_packets_total() > 100,
        "the rest of the network keeps delivering"
    );
    assert!(!net.link_state().all_up());
    assert_eq!(net.link_state().num_down(), 2, "both directions are down");
    // the ledger remembers the credits of every phit dropped on the dead
    // link itself — in flight on the wire or staged behind it — plus any
    // credit-return messages that were on the wire, while the link stays
    // down. Unroutable discards consumed no credits on the dead link, so
    // they are excluded from the bound.
    assert!(
        net.fault_lost_credits()
            >= net.metrics().dropped_on_fault_phits() - net.metrics().dropped_unroutable_phits(),
        "every phit dropped on the dead link has its credits ledgered until LinkUp"
    );
    // drain what can still be delivered; conservation holds throughout
    net.drain(20_000);
    check_fault_conservation(&net);
}

#[test]
fn link_up_restores_credits_and_full_conservation() {
    // down for a 300-cycle window, then restored: after the drain the
    // network must be byte-for-byte healthy again (all credits back, no
    // ledger leftovers), with the drops still on the books
    let (gw, port) = link_between(0, 1);
    let cfg = base_builder()
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .faults(
            FaultPlan::new()
                .link_down(200, gw, port)
                .link_up(500, gw, port),
        )
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.run_cycles(600);
    assert!(net.link_state().all_up(), "the link came back");
    assert!(
        net.drain(50_000),
        "a restored network must drain completely"
    );
    assert!(net.metrics().dropped_on_fault_packets() > 0);
    check_fault_conservation(&net);
    check_full_conservation(&net);
    assert_eq!(
        net.injected_packets_total(),
        net.metrics().delivered_packets_total() + net.metrics().dropped_on_fault_packets()
    );
}

#[test]
fn adaptive_routing_routes_around_a_dead_link() {
    // under MIN the unique minimal path through the dead link stalls its
    // packets until the link returns; contention-based adaptive routing
    // misroutes around the failure and keeps (nearly) everything moving
    let run = |routing: RoutingKind| {
        let (gw, port) = link_between(0, 4);
        let cfg = base_builder()
            .routing(routing)
            .pattern(PatternKind::Uniform)
            .faults(FaultPlan::new().link_down(150, gw, port))
            .build()
            .unwrap();
        let mut net = Network::new(cfg);
        net.run_cycles(600);
        net.drain(20_000);
        check_fault_conservation(&net);
        (net.metrics().delivered_packets_total(), net.in_flight())
    };
    let (min_delivered, min_stuck) = run(RoutingKind::Minimal);
    let (base_delivered, base_stuck) = run(RoutingKind::Base);
    assert!(
        min_stuck > 0,
        "minimal routing must strand packets behind the unique dead minimal path"
    );
    assert!(
        base_stuck < min_stuck,
        "contention-based routing must strand fewer packets ({base_stuck} vs {min_stuck})"
    );
    assert!(base_delivered > min_delivered);
}

#[test]
fn router_drain_stops_generation_and_flushes() {
    // drain router 2 at cycle 150: its nodes stop generating, already
    // queued traffic flushes, transit traffic is unaffected, and the
    // network drains completely (no drops: nothing was in flight on a
    // failed link)
    let cfg = base_builder()
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .faults(FaultPlan::new().router_drain(150, RouterId(2)))
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.run_cycles(600);
    let topo = *net.topology();
    let drained_generated: u64 = topo
        .nodes_of_router(RouterId(2))
        .map(|n| net.node(n).generated_phits())
        .sum();
    // ~150 cycles at load 0.25 over 2 nodes ≈ 75 phits; far below the
    // ~300 phits an undrained router pair would generate in 600 cycles
    assert!(drained_generated > 0, "generation ran before the drain");
    assert!(
        drained_generated < 150,
        "generation must stop at the drain cycle (got {drained_generated})"
    );
    assert!(net.drain(20_000), "a drained router flushes completely");
    assert_eq!(net.metrics().dropped_on_fault_packets(), 0);
    check_fault_conservation(&net);
    check_full_conservation(&net);
    // the drained nodes' source queues flushed too
    for n in topo.nodes_of_router(RouterId(2)) {
        assert_eq!(net.node(n).queue_len(), 0);
    }
}

#[test]
fn router_restore_resumes_generation() {
    let cfg = base_builder()
        .routing(RoutingKind::Minimal)
        .pattern(PatternKind::Uniform)
        .faults(
            FaultPlan::new()
                .router_drain(100, RouterId(3))
                .router_restore(400, RouterId(3)),
        )
        .build()
        .unwrap();
    let mut net = Network::new(cfg.clone());
    net.run_cycles(400);
    let topo = *net.topology();
    let at_restore: u64 = topo
        .nodes_of_router(RouterId(3))
        .map(|n| net.node(n).generated_phits())
        .sum();
    net.run_cycles(200);
    let after: u64 = topo
        .nodes_of_router(RouterId(3))
        .map(|n| net.node(n).generated_phits())
        .sum();
    assert!(
        after > at_restore,
        "generation must resume after RouterRestore ({after} vs {at_restore})"
    );
    assert!(net.drain(20_000));
    check_full_conservation(&net);
}

#[test]
fn drain_fast_forward_never_skips_a_fault_cycle() {
    // The optimized kernel's drain() fast-forwards the clock when every
    // router is idle. A fault cycle is a schedule change-point: the clamp
    // must observe it exactly, or a LinkDown scheduled during the drain
    // window would fire late and miss the traffic it should have dropped.
    // The legacy kernel never fast-forwards, so bit-identical results
    // (including the dropped count) prove the clamp is correct.
    let run = |kernel: KernelMode| {
        let (gw, port) = link_between(0, 4);
        let mut cfg = base_builder()
            .routing(RoutingKind::Minimal)
            .pattern(PatternKind::Uniform)
            // long global links: plenty of idle-router cycles with traffic
            // in flight during the drain, which is what arms the
            // fast-forward path
            .network(NetworkConfig::paper_table1())
            .measurement_cycles(300)
            .faults(
                FaultPlan::new()
                    .link_down(320, gw, port)
                    .link_up(800, gw, port),
            )
            .build()
            .unwrap();
        cfg.kernel = kernel;
        let mut net = Network::new(cfg);
        net.run_cycles(300);
        let drained = net.drain(50_000);
        (
            drained,
            net.cycle(),
            net.metrics().delivered_packets_total(),
            net.metrics().dropped_on_fault_packets(),
            net.metrics().dropped_on_fault_phits(),
        )
    };
    let optimized = run(KernelMode::Optimized);
    let legacy = run(KernelMode::Legacy);
    assert_eq!(
        optimized, legacy,
        "drain() fast-forward diverged from the cycle-by-cycle legacy kernel"
    );
    assert!(
        optimized.3 > 0,
        "the fault fired during the drain window and dropped in-flight traffic"
    );
    assert!(optimized.0, "the restored network drains");
}

#[test]
fn faulted_runs_are_bit_identical_across_all_kernels_and_worker_counts() {
    // the acceptance bar: a faulted scenario produces the same trajectory
    // under optimized, legacy and parallel kernels at workers {1, 2, 4}
    let run = |kernel: KernelMode| {
        let (gw, port) = link_between(0, 1);
        let mut cfg = base_builder()
            .routing(RoutingKind::Base)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .faults(
                FaultPlan::new()
                    .link_down(150, gw, port)
                    .router_drain(200, RouterId(5))
                    .link_up(400, gw, port)
                    .router_restore(450, RouterId(5)),
            )
            .build()
            .unwrap();
        cfg.kernel = kernel;
        let mut net = Network::new(cfg);
        net.metrics_mut().start_measurement(0);
        net.run_cycles(600);
        net.drain(20_000);
        let s = net.metrics().window_summary();
        (
            s.delivered_packets,
            s.avg_packet_latency.to_bits(),
            net.metrics().dropped_on_fault_packets(),
            net.metrics().dropped_on_fault_phits(),
            net.cycle(),
            net.in_flight(),
        )
    };
    let reference = run(KernelMode::Optimized);
    assert!(reference.2 > 0, "the scenario must exercise drops");
    assert_eq!(run(KernelMode::Legacy), reference, "legacy kernel diverged");
    for workers in [1usize, 2, 4] {
        assert_eq!(
            run(KernelMode::Parallel { workers }),
            reference,
            "parallel({workers}) diverged on a faulted run"
        );
    }
}

#[test]
fn medium_scale_link_failure_conserves_phits_and_credits_exactly() {
    // the 1,056-node acceptance criterion: fail a link mid-run at medium
    // scale, restore it, and require (a) the exact packet/phit equalities
    // while degraded and (b) full credit conservation after recovery
    let topo = Dragonfly::new(DragonflyParams::medium());
    let (gw, port) = FaultPlan::global_link_between(&topo, GroupId(0), GroupId(1));
    let cfg = SimulationConfig::builder()
        .topology(DragonflyParams::medium())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .offered_load(0.25)
        .warmup_cycles(0)
        .measurement_cycles(300)
        .seed(17)
        .faults(
            FaultPlan::new()
                .link_down(100, gw, port)
                .link_up(220, gw, port),
        )
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    net.metrics_mut().start_measurement(0);
    // step through the degraded window checking the equality as we go
    for _ in 0..30 {
        net.run_cycles(10);
        check_fault_conservation(&net);
    }
    assert!(
        net.metrics().dropped_on_fault_packets() > 0,
        "an adversarial-loaded link must drop in-flight traffic when it fails"
    );
    assert!(net.drain(100_000), "the restored medium network drains");
    check_fault_conservation(&net);
    check_full_conservation(&net);
}

#[test]
fn degraded_connectivity_queries_track_the_fault_plan() {
    let (gw, port) = link_between(0, 4);
    let cfg = base_builder()
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .faults(
            FaultPlan::new()
                .link_down(50, gw, port)
                .link_up(150, gw, port),
        )
        .build()
        .unwrap();
    let mut net = Network::new(cfg);
    let topo = *net.topology();
    assert!(net
        .link_state()
        .group_pair_connected(&topo, GroupId(0), GroupId(4)));
    net.run_cycles(60);
    assert!(!net
        .link_state()
        .group_pair_connected(&topo, GroupId(0), GroupId(4)));
    assert!(
        net.link_state().connected(&topo),
        "one dead global link leaves the network connected through other groups"
    );
    assert_eq!(net.link_state().down_links().len(), 2);
    net.run_cycles(100);
    assert!(net
        .link_state()
        .group_pair_connected(&topo, GroupId(0), GroupId(4)));
    assert!(net.link_state().all_up());
}
