//! The pinned fingerprint corpus shared by the golden regression suites.
//!
//! `tests/scenario_matrix.rs` pins the optimized kernel's results to these
//! tables; `tests/kernel_equivalence.rs` replays the *same* tables under
//! the parallel kernel at several worker counts — so the parallel kernel is
//! checked against the committed corpus, not merely against a fresh
//! sequential run. Included via `#[path]` from both test binaries (files
//! under `tests/common/` are not test roots themselves).
//!
//! If a fingerprint changes after an intentional semantics change,
//! regenerate with
//!
//! ```text
//! cargo test --release --test scenario_matrix -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants in the same commit, calling the update
//! out in the PR description.

use contention_dragonfly::prelude::*;

/// Offered load every corpus run uses.
pub const LOAD: f64 = 0.2;
/// Seed every corpus run uses.
pub const SEED: u64 = 11;

/// Every pattern the matrix covers, with stable labels.
pub fn all_patterns() -> Vec<PatternKind> {
    vec![
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.5,
        },
        PatternKind::Permutation { seed: 17 },
        PatternKind::Hotspot {
            hotspots: 4,
            fraction: 0.5,
        },
        PatternKind::BitComplement,
        PatternKind::BitReversal,
        PatternKind::GroupLocal {
            local_fraction: 0.6,
        },
    ]
}

/// The non-Bernoulli injectors and multi-phase scenarios the golden suite
/// covers, each under two contention-based routings.
pub fn special_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::named("UN-bursty")
            .injection(InjectionKind::Bursty {
                mean_on: 50.0,
                mean_off: 50.0,
            })
            .hold(PatternKind::Uniform),
        Scenario::named("UN-ramp")
            .injection(InjectionKind::Ramp {
                start_fraction: 0.0,
                ramp_cycles: 300,
            })
            .hold(PatternKind::Uniform),
        Scenario::transient(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            300,
        ),
        Scenario::named("UN-storm-UN")
            .phase(PatternKind::Uniform, 250)
            .phase_at_load(PatternKind::Adversarial { offset: 1 }, 0.35, 200)
            .hold(PatternKind::Uniform),
    ]
}

/// The fault-injection corpus: deterministic link/router failures layered
/// over steady workloads, each replayed under three routing mechanisms.
/// Cycles are absolute on the corpus clock (warm-up 200 + measure 400 +
/// drain).
pub fn fault_scenarios() -> Vec<Scenario> {
    let topo = Dragonfly::new(DragonflyParams::small());
    // ADV+1 concentrates every group-0 flow on the 0->1 global link, so
    // failing it guarantees in-flight drops; UN spreads traffic and
    // exercises the sparse-drop path.
    let (gw01, port01) = df_sim::FaultPlan::global_link_between(&topo, GroupId(0), GroupId(1));
    let (gw12, port12) = df_sim::FaultPlan::global_link_between(&topo, GroupId(1), GroupId(2));
    // a local (intra-group) link, for the detour re-commit paths
    let local_port = Port::local(topo.params(), 0);
    vec![
        Scenario::named("ADV-gldown")
            .hold(PatternKind::Adversarial { offset: 1 })
            .link_down(150, gw01, port01)
            .link_up(450, gw01, port01),
        Scenario::named("UN-gldown")
            .hold(PatternKind::Uniform)
            .link_down(150, gw01, port01)
            .link_up(450, gw01, port01),
        Scenario::named("UN-drain")
            .hold(PatternKind::Uniform)
            .router_drain(150, RouterId(2))
            .router_restore(400, RouterId(2)),
        Scenario::named("ADV-cut2")
            .hold(PatternKind::Adversarial { offset: 1 })
            .link_down(100, gw01, port01)
            .link_down(100, gw12, port12),
        // PR-5 re-commit/link-state cells: the double cut *with recovery*
        // (re-commit drains the committed packets, the LinkUps restore full
        // credit conservation mid-run) and a local-link failure in the
        // adversarial hot group (exercises detour re-commit and the
        // dead-local trigger paths).
        Scenario::named("ADV-cut2up")
            .hold(PatternKind::Adversarial { offset: 1 })
            .link_down(100, gw01, port01)
            .link_down(100, gw12, port12)
            .link_up(450, gw01, port01)
            .link_up(450, gw12, port12),
        Scenario::named("ADV-lldown")
            .hold(PatternKind::Adversarial { offset: 1 })
            .link_down(150, RouterId(0), local_port)
            .link_up(500, RouterId(0), local_port),
    ]
}

/// The routing mechanisms the fault corpus is replayed under.
pub fn fault_routings() -> [RoutingKind; 3] {
    [RoutingKind::Base, RoutingKind::Olm, RoutingKind::Ectn]
}

/// The churn corpus: sustained MTBF/MTTR failure processes lowered from
/// seeded [`ChurnModel`]s — link churn, node failures with
/// reroute-to-spare, and (in the heavy cell) router drains — over steady
/// workloads on the corpus clock. The models generate events in
/// `[100, 600)`, so failures keep firing through the whole measured window
/// and some are still unrepaired when it closes.
pub fn churn_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::named("UN-churn")
            .hold(PatternKind::Uniform)
            .churn(
                ChurnModel::new(23, 100, 500)
                    .global_links(ChurnRate::new(2_500.0, 250.0))
                    .nodes(ChurnRate::new(2_000.0, 300.0)),
            ),
        Scenario::named("ADV-churn")
            .hold(PatternKind::Adversarial { offset: 1 })
            .churn(
                ChurnModel::new(29, 100, 500)
                    .global_links(ChurnRate::new(3_000.0, 300.0))
                    .local_links(ChurnRate::new(6_000.0, 300.0))
                    .nodes(ChurnRate::new(2_500.0, 300.0)),
            ),
    ]
}

/// The routing mechanisms the churn corpus is replayed under: discovery-only
/// Base plus both mechanisms that flood link state (PB on every cycle, ECtN
/// on its broadcast cadence).
pub fn churn_routings() -> [RoutingKind; 3] {
    [
        RoutingKind::Base,
        RoutingKind::PiggyBacking,
        RoutingKind::Ectn,
    ]
}

/// `(delivered packets in the window, dropped-on-fault packets, in-flight
/// after a bounded drain, final cycle, mean-latency f64 bits)` — the
/// fingerprint of a faulted corpus run. Unlike [`fingerprint`] this does
/// not require the network to drain: scenarios with permanent link loss
/// may legitimately strand committed packets behind the cut, and the
/// stranded count is part of the pinned behaviour.
pub fn fault_fingerprint(cfg: SimulationConfig) -> (u64, u64, u64, u64, u64) {
    let mut net = Network::new(cfg.clone());
    net.run_cycles(cfg.warmup_cycles);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(cfg.measurement_cycles);
    net.drain(20_000);
    // the conservation equality must hold for every corpus cell, drained
    // or not
    assert_eq!(
        net.injected_packets_total(),
        net.metrics().delivered_packets_total()
            + net.in_flight()
            + net.metrics().dropped_on_fault_packets(),
        "packet conservation violated in a fault corpus run"
    );
    let summary = net.metrics().window_summary();
    (
        summary.delivered_packets,
        net.metrics().dropped_on_fault_packets(),
        net.in_flight(),
        net.cycle(),
        summary.avg_packet_latency.to_bits(),
    )
}

/// `(delivered packets in the window, dropped-on-fault packets, retargeted
/// packets, in-flight after a bounded drain, final cycle, mean-latency f64
/// bits)` — the fingerprint of a churn corpus run. Extends
/// [`fault_fingerprint`] with the node-failure retarget counter and checks
/// conservation for phits as well as packets.
pub fn churn_fingerprint(cfg: SimulationConfig) -> (u64, u64, u64, u64, u64, u64) {
    let mut net = Network::new(cfg.clone());
    net.run_cycles(cfg.warmup_cycles);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(cfg.measurement_cycles);
    net.drain(20_000);
    assert_eq!(
        net.injected_packets_total(),
        net.metrics().delivered_packets_total()
            + net.in_flight()
            + net.metrics().dropped_on_fault_packets(),
        "packet conservation violated in a churn corpus run"
    );
    assert_eq!(
        net.injected_phits_total(),
        net.metrics().delivered_phits_total()
            + net.in_flight_phits()
            + net.metrics().dropped_on_fault_phits(),
        "phit conservation violated in a churn corpus run"
    );
    let summary = net.metrics().window_summary();
    (
        summary.delivered_packets,
        net.metrics().dropped_on_fault_packets(),
        net.metrics().retargeted_packets(),
        net.in_flight(),
        net.cycle(),
        summary.avg_packet_latency.to_bits(),
    )
}

/// The common builder every corpus run starts from (kernel left to the
/// caller / environment).
pub fn base_builder() -> df_sim::SimulationConfigBuilder {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .offered_load(LOAD)
        .warmup_cycles(200)
        .measurement_cycles(400)
        .seed(SEED)
}

/// `(delivered packets in the window, final cycle after drain, mean-latency
/// f64 bits)` — the fingerprint every golden table pins.
pub fn fingerprint(cfg: SimulationConfig) -> (u64, u64, u64) {
    let mut net = Network::new(cfg.clone());
    net.run_cycles(cfg.warmup_cycles);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(cfg.measurement_cycles);
    assert!(net.drain(100_000), "golden runs must drain");
    let summary = net.metrics().window_summary();
    (
        summary.delivered_packets,
        net.cycle(),
        summary.avg_packet_latency.to_bits(),
    )
}

/// Pinned on `DragonflyParams::small()` + `NetworkConfig::fast_test()`,
/// load 0.2, seed 11, warmup 200 + measure 400 + drain.
#[rustfmt::skip]
pub const GOLDEN_ROUTING_PATTERN: &[(&str, &str, u64, u64, u64)] = &[
    // (routing, pattern, delivered_window, final_cycle, latency_bits)
    ("MIN", "UN", 805, 652, 0x40469853F48D328F),
    ("MIN", "ADV+1", 911, 1137, 0x4070211244011FC1),
    ("MIN", "MIX(ADV+1,50%UN)", 824, 772, 0x405002F392A409F2),
    ("MIN", "PERM(17)", 809, 665, 0x404761C7AC75B73A),
    ("MIN", "HOT(4x50%)", 873, 1201, 0x406D38F652B1B44E),
    ("MIN", "BITCOMP", 888, 1125, 0x406CF322983759ED),
    ("MIN", "BITREV", 816, 656, 0x4047257D7D7D7D77),
    ("MIN", "LOC(60%)", 782, 653, 0x404112D2D2D2D2D3),
    ("VAL", "UN", 885, 703, 0x40565E02E4850FEB),
    ("VAL", "ADV+1", 883, 706, 0x405708C52566578F),
    ("VAL", "MIX(ADV+1,50%UN)", 882, 705, 0x4056F01BDD2B8999),
    ("VAL", "PERM(17)", 885, 708, 0x40569F9A2DB43662),
    ("VAL", "HOT(4x50%)", 922, 1241, 0x4070A04B85D4AF7E),
    ("VAL", "BITCOMP", 884, 704, 0x4056D4B4B4B4B4B2),
    ("VAL", "BITREV", 878, 700, 0x4055845FA2B27127),
    ("VAL", "LOC(60%)", 877, 697, 0x4055828DDD8E284D),
    ("PB", "UN", 809, 689, 0x4048C89F7C5C6689),
    ("PB", "ADV+1", 860, 691, 0x40521404C3464050),
    ("PB", "MIX(ADV+1,50%UN)", 827, 690, 0x404CBFEC304A4AEE),
    ("PB", "PERM(17)", 819, 680, 0x404AA62262262260),
    ("PB", "HOT(4x50%)", 874, 1201, 0x406D0F574939FED5),
    ("PB", "BITCOMP", 840, 690, 0x4050B3A83A83A843),
    ("PB", "BITREV", 824, 692, 0x404AE9027C4597A2),
    ("PB", "LOC(60%)", 784, 691, 0x4041BE87D6343EB2),
    ("OLM", "UN", 835, 687, 0x404F17743247BDC7),
    ("OLM", "ADV+1", 844, 688, 0x40508BE7BC0E8F1F),
    ("OLM", "MIX(ADV+1,50%UN)", 839, 681, 0x40503035B3B7FD90),
    ("OLM", "PERM(17)", 841, 693, 0x40500D2A4FC0AF52),
    ("OLM", "HOT(4x50%)", 890, 1201, 0x406DD3F47E8FD1F4),
    ("OLM", "BITCOMP", 844, 701, 0x405123A3CA9DB9A6),
    ("OLM", "BITREV", 835, 686, 0x40502242D5FF6308),
    ("OLM", "LOC(60%)", 790, 659, 0x40443DE4C79D7D13),
    ("Base", "UN", 805, 652, 0x40469853F48D328F),
    ("Base", "ADV+1", 886, 765, 0x405A8D4A8BD8B448),
    ("Base", "MIX(ADV+1,50%UN)", 824, 716, 0x404E5A409F1165E6),
    ("Base", "PERM(17)", 809, 665, 0x404761C7AC75B73A),
    ("Base", "HOT(4x50%)", 873, 1201, 0x406D38F652B1B44E),
    ("Base", "BITCOMP", 879, 757, 0x4059395FD166CEC9),
    ("Base", "BITREV", 816, 656, 0x4047257D7D7D7D77),
    ("Base", "LOC(60%)", 782, 653, 0x404112D2D2D2D2D3),
    ("Hybrid", "UN", 834, 691, 0x404E74A4870F590B),
    ("Hybrid", "ADV+1", 841, 687, 0x405071D86D9575C9),
    ("Hybrid", "MIX(ADV+1,50%UN)", 833, 686, 0x40500DD45C3266A4),
    ("Hybrid", "PERM(17)", 836, 685, 0x404FF32385830FE5),
    ("Hybrid", "HOT(4x50%)", 887, 1201, 0x406D1E5729458E4A),
    ("Hybrid", "BITCOMP", 842, 687, 0x4050FB9769327864),
    ("Hybrid", "BITREV", 837, 681, 0x404FC4349B5FBB80),
    ("Hybrid", "LOC(60%)", 791, 664, 0x4043F38A31D738A3),
    ("ECtN", "UN", 805, 652, 0x40469853F48D328F),
    ("ECtN", "ADV+1", 886, 765, 0x405A8D4A8BD8B448),
    ("ECtN", "MIX(ADV+1,50%UN)", 824, 716, 0x404E5A409F1165E6),
    ("ECtN", "PERM(17)", 809, 665, 0x404761C7AC75B73A),
    ("ECtN", "HOT(4x50%)", 873, 1201, 0x406D38F652B1B44E),
    ("ECtN", "BITCOMP", 879, 757, 0x4059395FD166CEC9),
    ("ECtN", "BITREV", 816, 656, 0x4047257D7D7D7D77),
    ("ECtN", "LOC(60%)", 782, 653, 0x404112D2D2D2D2D3),
];

/// Pinned fault-corpus fingerprints: every [`fault_scenarios`] cell under
/// every [`fault_routings`] mechanism, same base configuration as the other
/// tables. Regenerate together with them (see the module docs).
/// Regenerated for PR 5 (failure-aware routing): staged packets behind a
/// dead link are dropped at the fault, committed continuations re-commit,
/// unroutable packets are discarded, and PB/ECtN steer by the disseminated
/// link state — so every link-fault cell's trajectory changed (UN-drain,
/// which fails no links, is byte-identical to PR 4). The headline rows:
/// ADV-cut2 now drains to **zero stranded packets** under every mechanism
/// (was 75/54/71), and ECtN's link-state view loses markedly fewer packets
/// than discover-at-gateway Base under the double cut (18 vs 105 dropped).
///
/// Regenerated again for the churn subsystem: hop-delayed per-group
/// flooding replaced the published-copy one-exchange dissemination, so the
/// incident groups now learn their own entries a full exchange *earlier*
/// (and remote entries per live hop). Only the ECtN link-fault rows moved —
/// ADV-cut2's ECtN drops improved 31 → 18 — while every Base/OLM row and
/// every healthy table stayed byte-identical (healthy runs never flood).
#[rustfmt::skip]
pub const GOLDEN_FAULTS: &[(&str, &str, u64, u64, u64, u64, u64)] = &[
    // (scenario, routing, delivered_window, dropped, in_flight, final_cycle, latency_bits)
    ("ADV-gldown", "Base", 875, 16, 0, 765, 0x405A9F4E1DD7A007),
    ("ADV-gldown", "OLM", 836, 10, 0, 685, 0x40508D79435E50E0),
    ("ADV-gldown", "ECtN", 881, 10, 0, 765, 0x405A1B061A26F00A),
    ("UN-gldown", "Base", 805, 0, 0, 652, 0x4046C553A323EF78),
    ("UN-gldown", "OLM", 827, 10, 0, 681, 0x404FA2D31D6851BF),
    ("UN-gldown", "ECtN", 805, 0, 0, 652, 0x4046B4A18CE1271C),
    ("UN-drain", "Base", 790, 0, 0, 653, 0x4046946A49E22FFD),
    ("UN-drain", "OLM", 820, 0, 0, 691, 0x404FB0B3D30B3D2E),
    ("UN-drain", "ECtN", 790, 0, 0, 653, 0x4046946A49E22FFD),
    ("ADV-cut2", "Base", 799, 105, 0, 788, 0x405BA5161B8DEFFF),
    ("ADV-cut2", "OLM", 789, 63, 0, 685, 0x405111470E99CB72),
    ("ADV-cut2", "ECtN", 883, 18, 0, 765, 0x4058E748C525665C),
    ("ADV-cut2up", "Base", 842, 62, 0, 765, 0x405B12D9B0F33AFA),
    ("ADV-cut2up", "OLM", 812, 40, 0, 693, 0x4050F717F5E94CEF),
    ("ADV-cut2up", "ECtN", 883, 18, 0, 765, 0x405913C97EB202E6),
    ("ADV-lldown", "Base", 882, 5, 0, 765, 0x405ABF7DF7DF7DFC),
    ("ADV-lldown", "OLM", 833, 12, 0, 686, 0x40505D3217F89FD4),
    ("ADV-lldown", "ECtN", 882, 5, 0, 765, 0x405AA20820820821),
];

/// Pinned churn-corpus fingerprints: every [`churn_scenarios`] cell under
/// every [`churn_routings`] mechanism. Introduced with the churn subsystem
/// (seeded MTBF/MTTR lowering, node failures with reroute-to-spare,
/// hop-delayed link-state flooding); regenerate together with the other
/// tables (see the module docs).
#[rustfmt::skip]
#[allow(clippy::type_complexity)]
pub const GOLDEN_CHURN: &[(&str, &str, u64, u64, u64, u64, u64, u64)] = &[
    // (scenario, routing, delivered_window, dropped, retargeted, in_flight, final_cycle, latency_bits)
    ("UN-churn", "Base", 708, 35, 65, 0, 678, 0x40475A08AD8F2FB4),
    ("UN-churn", "PB", 725, 21, 65, 0, 688, 0x4049E1A213114D56),
    ("UN-churn", "ECtN", 726, 17, 65, 0, 667, 0x40477A5BAE315DCA),
    ("ADV-churn", "Base", 765, 55, 67, 0, 783, 0x405A2D4297ED428E),
    ("ADV-churn", "PB", 749, 45, 67, 0, 697, 0x4051FA880833F3B3),
    ("ADV-churn", "ECtN", 770, 50, 67, 0, 775, 0x405883288FA03FD6),
];

/// The collective corpus: task workloads (rank-level communication scripts
/// executed by the task layer) on the small topology. Labels come from
/// [`TaskWorkload::label`]. The mix covers every collective kind, both
/// all-reduce algorithms, a non-power-of-two rank count (recursive
/// doubling's fold/unfold path), both placements and a multi-collective
/// sequence.
pub fn collective_workloads() -> Vec<TaskWorkload> {
    vec![
        TaskWorkload::single(CollectiveKind::AllToAll, 8, 2)
            .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 8, 2),
        TaskWorkload::single(
            CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
            12,
            2,
        )
        .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::Barrier, 16, 1)
            .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::SweepNeighbors, 8, 4),
        TaskWorkload {
            ranks: 8,
            placement: RankPlacement::GroupSpread,
            sequence: vec![
                CollectiveKind::Barrier,
                CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
            ],
            packets_per_message: 2,
        },
    ]
}

/// The routing mechanisms the collective corpus is replayed under.
pub fn collective_routings() -> [RoutingKind; 3] {
    [
        RoutingKind::Base,
        RoutingKind::PiggyBacking,
        RoutingKind::Ectn,
    ]
}

/// The common configuration every collective corpus run uses (kernel left
/// to the caller / environment; the pattern is a placeholder — workload
/// mode replaces stochastic generation entirely).
pub fn collective_config(workload: TaskWorkload, routing: RoutingKind) -> SimulationConfig {
    base_builder()
        .routing(routing)
        .pattern(PatternKind::Uniform)
        .workload(workload)
        .build()
        .expect("valid collective configuration")
}

/// `(application completion cycle, delivered packets, rank stall cycles,
/// mean-latency f64 bits)` — the fingerprint of a collective corpus run.
/// Completion is mandatory and implies the network drained (the last
/// step's sends must all deliver for their ranks to finish, and no other
/// traffic exists in workload mode).
pub fn collective_fingerprint(cfg: SimulationConfig) -> (u64, u64, u64, u64) {
    let mut net = Network::new(cfg);
    net.metrics_mut().start_measurement(0);
    let done = net
        .run_until_tasks_complete(200_000)
        .expect("corpus collectives must complete");
    assert_eq!(net.in_flight(), 0, "completion implies an empty network");
    let task = net.task().expect("corpus runs carry a workload");
    assert_eq!(
        task.steps_completed(),
        task.total_steps(),
        "every step must be globally complete"
    );
    (
        done,
        net.metrics().delivered_packets_total(),
        net.metrics().rank_stall_cycles(),
        net.metrics().window_summary().avg_packet_latency.to_bits(),
    )
}

/// Pinned collective-corpus fingerprints: every [`collective_workloads`]
/// cell under every [`collective_routings`] mechanism, same base
/// configuration and seed as the other tables. Introduced with the task
/// layer; regenerate together with them (see the module docs — the regen
/// helper lives in `tests/collectives.rs`).
#[rustfmt::skip]
pub const GOLDEN_COLLECTIVES: &[(&str, &str, u64, u64, u64, u64)] = &[
    // (workload, routing, completion_cycle, delivered, rank_stall_cycles, latency_bits)
    ("all-to-allx8", "Base", 389, 112, 2964, 0x4048800000000000),
    ("all-to-allx8", "PB", 620, 112, 4764, 0x404E9B6DB6DB6DB9),
    ("all-to-allx8", "ECtN", 389, 112, 2964, 0x4048800000000000),
    ("all-reduce-ringx8", "Base", 434, 224, 3248, 0x4035000000000003),
    ("all-reduce-ringx8", "PB", 434, 224, 3248, 0x4035000000000003),
    ("all-reduce-ringx8", "ECtN", 434, 224, 3248, 0x4035000000000003),
    ("all-reduce-rdx12", "Base", 247, 64, 2712, 0x40473FFFFFFFFFFF),
    ("all-reduce-rdx12", "PB", 432, 64, 4468, 0x404DB20000000000),
    ("all-reduce-rdx12", "ECtN", 247, 64, 2712, 0x40473FFFFFFFFFFF),
    ("barrierx16", "Base", 192, 64, 2976, 0x4045AFFFFFFFFFFF),
    ("barrierx16", "PB", 260, 64, 4000, 0x40480C0000000001),
    ("barrierx16", "ECtN", 192, 64, 2976, 0x4045AFFFFFFFFFFF),
    ("sweep-neighborsx8", "Base", 71, 56, 436, 0x4043124924924925),
    ("sweep-neighborsx8", "PB", 71, 56, 436, 0x4043124924924925),
    ("sweep-neighborsx8", "ECtN", 71, 56, 436, 0x4043124924924925),
    ("barrier+all-reduce-rdx8", "Base", 318, 96, 2448, 0x4047C00000000000),
    ("barrier+all-reduce-rdx8", "PB", 552, 96, 4200, 0x404EA00000000001),
    ("barrier+all-reduce-rdx8", "ECtN", 318, 96, 2448, 0x4047C00000000000),
];

#[rustfmt::skip]
pub const GOLDEN_SPECIAL: &[(&str, &str, u64, u64, u64)] = &[
    // (scenario, routing, delivered_window, final_cycle, latency_bits)
    ("UN-bursty", "Base", 824, 648, 0x4046E5979C95204C),
    ("UN-bursty", "ECtN", 824, 648, 0x4046E5979C95204C),
    ("UN-ramp", "Base", 748, 657, 0x40467F24F66AC7DF),
    ("UN-ramp", "ECtN", 748, 657, 0x40467F24F66AC7DF),
    ("UN->ADV+1", "Base", 805, 785, 0x4053B98F6C713667),
    ("UN->ADV+1", "ECtN", 805, 785, 0x4053B98F6C713667),
    ("UN-storm-UN", "Base", 1067, 663, 0x4054D492D588846B),
    ("UN-storm-UN", "ECtN", 1067, 663, 0x4054D492D588846B),
];

// ---------------------------------------------------------------------------
// Megafly / Dragonfly+ corpus slice
// ---------------------------------------------------------------------------

/// The common builder every Megafly corpus run starts from: the second
/// [`Topology`] instance, sized like the Dragonfly `small()` corpus
/// (`p=2, l=s=4, h=2`, 9 groups, 72 nodes), same load, seed and windows.
/// Kernel left to the caller / environment, so the CI kernel matrix replays
/// this slice under every kernel exactly like the Dragonfly tables.
pub fn megafly_base_builder() -> df_sim::SimulationConfigBuilder {
    SimulationConfig::builder()
        .topology(MegaflyParams::small())
        .network(NetworkConfig::fast_test())
        .offered_load(LOAD)
        .warmup_cycles(200)
        .measurement_cycles(400)
        .seed(SEED)
}

/// Patterns the Megafly slice covers: the two paper workloads plus the
/// group-local mix, whose intra-group traffic exercises the two-hop
/// leaf→spine→leaf minimal path that does not exist on the Dragonfly.
pub fn megafly_patterns() -> Vec<PatternKind> {
    vec![
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        PatternKind::GroupLocal {
            local_fraction: 0.6,
        },
    ]
}

/// Routings the Megafly pattern slice is replayed under. Local misrouting
/// is structurally disabled on Megafly (`local_misroute_degree() == 0`), so
/// this covers each distinct decision family: minimal, oblivious Valiant,
/// contention-based Base, link-utilisation PB and the ECtN broadcast.
pub fn megafly_routings() -> [RoutingKind; 5] {
    [
        RoutingKind::Minimal,
        RoutingKind::Valiant,
        RoutingKind::Base,
        RoutingKind::PiggyBacking,
        RoutingKind::Ectn,
    ]
}

/// The Megafly link-fault slice: an outage window on the ADV+1 hot global
/// link (owned by a spine router) under discovery-only Base and link-state
/// flooding ECtN — the pair whose drop counts bracket the fault corpus.
pub fn megafly_fault_scenarios() -> Vec<Scenario> {
    let topo = Megafly::new(MegaflyParams::small());
    let (gw01, port01) = df_sim::FaultPlan::global_link_between(&topo, GroupId(0), GroupId(1));
    vec![
        Scenario::named("MF-ADV-gldown")
            .hold(PatternKind::Adversarial { offset: 1 })
            .link_down(150, gw01, port01)
            .link_up(450, gw01, port01),
        Scenario::named("MF-UN-gldown")
            .hold(PatternKind::Uniform)
            .link_down(150, gw01, port01)
            .link_up(450, gw01, port01),
    ]
}

/// The routing mechanisms the Megafly fault slice is replayed under.
pub fn megafly_fault_routings() -> [RoutingKind; 2] {
    [RoutingKind::Base, RoutingKind::Ectn]
}

/// The Megafly collective slice: one all-to-all spread across groups (every
/// rank pair crosses a spine) and one ring all-reduce packed into leaves.
pub fn megafly_collective_workloads() -> Vec<TaskWorkload> {
    vec![
        TaskWorkload::single(CollectiveKind::AllToAll, 8, 2)
            .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 8, 2),
    ]
}

/// The common configuration every Megafly collective corpus run uses.
pub fn megafly_collective_config(workload: TaskWorkload, routing: RoutingKind) -> SimulationConfig {
    megafly_base_builder()
        .routing(routing)
        .pattern(PatternKind::Uniform)
        .workload(workload)
        .build()
        .expect("valid megafly collective configuration")
}

/// Pinned on `MegaflyParams::small()` + `NetworkConfig::fast_test()`, load
/// 0.2, seed 11, warmup 200 + measure 400 + drain. Introduced with the
/// `Topology` trait (topology pluralism); regenerate together with the
/// other tables (see the module docs).
#[rustfmt::skip]
pub const GOLDEN_MEGAFLY: &[(&str, &str, u64, u64, u64)] = &[
    // (routing, pattern, delivered_window, final_cycle, latency_bits)
    ("MIN", "UN", 820, 652, 0x40497C68E5C68E59),
    ("MIN", "ADV+1", 920, 1157, 0x40707FC1AB68A045),
    ("MIN", "LOC(60%)", 801, 651, 0x4045306B62C1AD90),
    ("VAL", "UN", 902, 696, 0x40585D7217D72179),
    ("VAL", "ADV+1", 899, 694, 0x4058BA1759B31D51),
    ("VAL", "LOC(60%)", 882, 697, 0x405772492492492A),
    ("Base", "UN", 820, 652, 0x40497C68E5C68E59),
    ("Base", "ADV+1", 909, 801, 0x405CF3BFC9ED699D),
    ("Base", "LOC(60%)", 801, 651, 0x4045306B62C1AD90),
    ("PB", "UN", 827, 687, 0x404BCA7288D27EE3),
    ("PB", "ADV+1", 867, 717, 0x4055663CD36A0093),
    ("PB", "LOC(60%)", 803, 677, 0x40463DD91B192F80),
    ("ECtN", "UN", 820, 652, 0x40497C68E5C68E59),
    ("ECtN", "ADV+1", 909, 801, 0x405CF3BFC9ED699D),
    ("ECtN", "LOC(60%)", 801, 651, 0x4045306B62C1AD90),
];

/// Pinned Megafly fault-slice fingerprints; same clock and conservation
/// checks as [`GOLDEN_FAULTS`].
#[rustfmt::skip]
pub const GOLDEN_MEGAFLY_FAULTS: &[(&str, &str, u64, u64, u64, u64, u64)] = &[
    // (scenario, routing, delivered_window, dropped, in_flight, final_cycle, latency_bits)
    ("MF-ADV-gldown", "Base", 887, 25, 0, 801, 0x405DAEC15EF42AB9),
    ("MF-ADV-gldown", "ECtN", 901, 11, 0, 801, 0x405DAD1AFE02D75B),
    ("MF-UN-gldown", "Base", 820, 0, 0, 652, 0x4049A436F2436F27),
    ("MF-UN-gldown", "ECtN", 820, 0, 0, 652, 0x4049A3E7063E7066),
];

/// Pinned Megafly collective-slice fingerprints; same completion contract
/// as [`GOLDEN_COLLECTIVES`].
#[rustfmt::skip]
pub const GOLDEN_MEGAFLY_COLLECTIVES: &[(&str, &str, u64, u64, u64, u64)] = &[
    // (workload, routing, completion_cycle, delivered, rank_stall_cycles, latency_bits)
    ("all-to-allx8", "Base", 413, 112, 3192, 0x404B7FFFFFFFFFFF),
    ("all-to-allx8", "ECtN", 413, 112, 3192, 0x404B7FFFFFFFFFFF),
    ("all-reduce-ringx8", "Base", 602, 224, 4592, 0x403B000000000000),
    ("all-reduce-ringx8", "ECtN", 602, 224, 4592, 0x403B000000000000),
];

// ---------------------------------------------------------------------------
// Multi-job corpus
// ---------------------------------------------------------------------------

/// The multi-job mixes: concurrent collective applications with
/// node-disjoint placements sharing one network, layered over the corpus'
/// uniform background traffic at load 0.2. The 2-job mix packs an
/// all-to-all and a ring all-reduce into adjacent node blocks; the 3-job
/// mix adds a deferred mini-app (stencil sweeps interleaved with
/// all-reduces) whose `start_cycle` and per-step compute delay exercise
/// the job-scheduling and readiness-clock paths.
pub fn job_mixes() -> Vec<(&'static str, Vec<JobSpec>)> {
    let a2a = TaskWorkload::single(CollectiveKind::AllToAll, 8, 2);
    let ring = TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 8, 2);
    let mini = TaskWorkload::mini_app(8, 2, AllReduceAlgorithm::RecursiveDoubling, 1);
    vec![
        (
            "2job",
            vec![
                JobSpec::new(a2a.clone(), JobPlacement::block(0)),
                JobSpec::new(ring.clone(), JobPlacement::block(8)),
            ],
        ),
        (
            "3job",
            vec![
                JobSpec::new(a2a, JobPlacement::block(0)),
                JobSpec::new(ring, JobPlacement::block(8)),
                JobSpec::new(mini, JobPlacement::block(16))
                    .starting_at(50)
                    .with_compute_delay(5),
            ],
        ),
    ]
}

/// The routing mechanisms the multi-job corpus is replayed under.
pub fn job_routings() -> [RoutingKind; 3] {
    [
        RoutingKind::Base,
        RoutingKind::PiggyBacking,
        RoutingKind::Ectn,
    ]
}

/// The common Dragonfly configuration every multi-job corpus run uses.
/// Unlike workload mode the stochastic injectors stay on: jobs contend
/// with uniform background traffic at the corpus load.
pub fn job_set_config(jobs: Vec<JobSpec>, routing: RoutingKind) -> SimulationConfig {
    base_builder()
        .routing(routing)
        .pattern(PatternKind::Uniform)
        .jobs(jobs)
        .build()
        .expect("valid multi-job configuration")
}

/// The Megafly twin of [`job_set_config`].
pub fn megafly_job_set_config(jobs: Vec<JobSpec>, routing: RoutingKind) -> SimulationConfig {
    megafly_base_builder()
        .routing(routing)
        .pattern(PatternKind::Uniform)
        .jobs(jobs)
        .build()
        .expect("valid megafly multi-job configuration")
}

/// `(makespan, sum of per-job completion cycles, delivered packets at the
/// makespan, total job stall cycles, mean-latency f64 bits)` — the
/// fingerprint of a multi-job corpus run. Every job must complete; the
/// network does *not* drain (background injectors keep running), so
/// delivery counts are read at the makespan cycle.
pub fn job_set_fingerprint(cfg: SimulationConfig) -> (u64, u64, u64, u64, u64) {
    let report = run_job_set(cfg, 200_000);
    assert!(report.all_completed, "corpus job sets must complete");
    let completion_sum: u64 = report
        .jobs
        .iter()
        .map(|j| j.completion_cycle.expect("all_completed"))
        .sum();
    let stall_total: u64 = report.jobs.iter().map(|j| j.total_stall_cycles).sum();
    (
        report.makespan.expect("all_completed"),
        completion_sum,
        report.delivered_packets,
        stall_total,
        report.avg_packet_latency.to_bits(),
    )
}

/// The pinned interference cell: two bandwidth-heavy all-to-all jobs on
/// interleaved group-spread placements — their ranks share routers (two
/// nodes per router on the small topologies) and the same local and
/// global links, so each job's completion time must be strictly worse
/// than its solo-run baseline under the same background traffic.
pub fn interference_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::new(
            TaskWorkload::single(CollectiveKind::AllToAll, 8, 6),
            JobPlacement::group_spread(0),
        ),
        JobSpec::new(
            TaskWorkload::single(CollectiveKind::AllToAll, 8, 6),
            JobPlacement::group_spread(1),
        ),
    ]
}

/// Pinned multi-job fingerprints: every [`job_mixes`] cell under every
/// [`job_routings`] mechanism, Dragonfly then Megafly, plus the
/// [`interference_jobs`] cell under Base on both topologies. Introduced
/// with the multi-job traffic layer; regenerate together with the other
/// tables (the regen helper lives in `tests/multi_job.rs`).
#[rustfmt::skip]
#[allow(clippy::type_complexity)]
pub const GOLDEN_JOBS: &[(&str, &str, &str, u64, u64, u64, u64, u64)] = &[
    // (topology, mix, routing, makespan, completion_sum, delivered, job_stalls, latency_bits)
    ("dragonfly", "2job", "Base", 501, 809, 1164, 5984, 0x4043BE054741FABA),
    ("dragonfly", "2job", "PB", 496, 794, 1146, 5840, 0x4044B8DA06413A8B),
    ("dragonfly", "2job", "ECtN", 501, 809, 1164, 5984, 0x4043BE054741FABA),
    ("dragonfly", "3job", "Base", 501, 1118, 1240, 7648, 0x4043469B4069B40B),
    ("dragonfly", "3job", "PB", 496, 1103, 1222, 7512, 0x40442B5D6F07F5ED),
    ("dragonfly", "3job", "ECtN", 501, 1118, 1240, 7648, 0x4043469B4069B40B),
    ("megafly", "2job", "Base", 669, 1051, 1457, 7942, 0x40478F763F9ACB7A),
    ("megafly", "2job", "PB", 680, 1059, 1466, 7899, 0x404960A7A3CC4FA9),
    ("megafly", "2job", "ECtN", 669, 1051, 1457, 7942, 0x40478F763F9ACB7A),
    ("megafly", "3job", "Base", 669, 1433, 1533, 10162, 0x4047283ECA0FB27C),
    ("megafly", "3job", "PB", 680, 1425, 1544, 10048, 0x4048F874B9B3113B),
    ("megafly", "3job", "ECtN", 669, 1433, 1533, 10162, 0x4047283ECA0FB27C),
    ("dragonfly", "interfere", "Base", 906, 1757, 2236, 13098, 0x404DE9F5ECC401D2),
    ("megafly", "interfere", "Base", 933, 1781, 2286, 13404, 0x40501BB76EDDBB7A),
];
