//! Cross-kernel equality suite for the phase-parallel sharded kernel.
//!
//! The parallel kernel's contract is *bit-for-bit* equality with the
//! sequential optimized kernel for every worker count. This suite checks it
//! three ways:
//!
//! 1. **Against the pinned corpus** — the full 56-combination routing ×
//!    pattern golden table and the injector/phase golden table from
//!    `tests/common/golden_corpus.rs` are replayed under
//!    `KernelMode::Parallel` at worker counts 1, 2, 4 and 7. The
//!    fingerprints must match the *committed* constants, not merely a fresh
//!    sequential run — so a change that shifted every kernel in lockstep
//!    would still be caught.
//! 2. **Against both sequential kernels on richer workloads** — bursty and
//!    ramp injectors and a multi-phase transient with a load override,
//!    compared on an extended fingerprint (full latency histogram,
//!    generated phits, in-flight count, final cycle) across Optimized,
//!    Legacy and Parallel at several worker counts.
//! 3. **Worker-count independence on one configuration swept 1..=7** — any
//!    pair of worker counts must agree with each other *and* with the
//!    optimized kernel.

use contention_dragonfly::prelude::*;

#[path = "common/golden_corpus.rs"]
#[allow(dead_code)] // the collective helpers are used by tests/collectives.rs
mod golden_corpus;

use golden_corpus::{
    all_patterns, base_builder, churn_fingerprint, churn_routings, churn_scenarios,
    fault_fingerprint, fault_routings, fault_scenarios, fingerprint, megafly_base_builder,
    megafly_patterns, megafly_routings, special_scenarios, GOLDEN_CHURN, GOLDEN_FAULTS,
    GOLDEN_MEGAFLY, GOLDEN_ROUTING_PATTERN, GOLDEN_SPECIAL,
};

/// The worker counts the corpus replays cover: the degenerate single-shard
/// pool, the even splits, and a count that neither divides the small
/// topology's 36 routers nor its 9 groups (uneven chunks).
const WORKER_COUNTS: &[usize] = &[1, 2, 4, 7];

fn run_corpus_at(workers: usize) {
    let kernel = KernelMode::Parallel { workers };
    let mut expected = GOLDEN_ROUTING_PATTERN.iter();
    for routing in RoutingKind::ALL {
        for pattern in all_patterns() {
            let cfg = base_builder()
                .routing(routing)
                .pattern(pattern)
                .kernel(kernel)
                .build()
                .expect("valid configuration");
            let got = fingerprint(cfg);
            let &(er, ep, ed, ec, el) = expected.next().expect("one row per combination");
            assert_eq!(
                (er, ep),
                (routing.label(), pattern.label().as_str()),
                "table order drifted"
            );
            assert_eq!(
                got,
                (ed, ec, el),
                "parallel({workers}): {} under {} diverged from the pinned corpus",
                routing.label(),
                pattern.label()
            );
        }
    }
    assert!(expected.next().is_none(), "stale corpus rows");
}

#[test]
fn parallel_1_worker_reproduces_the_pinned_corpus() {
    run_corpus_at(1);
}

#[test]
fn parallel_2_workers_reproduce_the_pinned_corpus() {
    run_corpus_at(2);
}

#[test]
fn parallel_4_workers_reproduce_the_pinned_corpus() {
    run_corpus_at(4);
}

#[test]
fn parallel_7_workers_reproduce_the_pinned_corpus() {
    run_corpus_at(7);
}

#[test]
fn parallel_reproduces_the_pinned_injector_and_phase_corpus() {
    for &workers in WORKER_COUNTS {
        let mut expected = GOLDEN_SPECIAL.iter();
        for scenario in special_scenarios() {
            for routing in [RoutingKind::Base, RoutingKind::Ectn] {
                let cfg = base_builder()
                    .routing(routing)
                    .scenario(&scenario)
                    .kernel(KernelMode::Parallel { workers })
                    .build()
                    .expect("valid configuration");
                let got = fingerprint(cfg);
                let &(es, er, ed, ec, el) = expected.next().expect("one row per combination");
                assert_eq!(
                    (es, er),
                    (scenario.name.as_str(), routing.label()),
                    "table order drifted"
                );
                assert_eq!(
                    got,
                    (ed, ec, el),
                    "parallel({workers}): {} under {} diverged from the pinned corpus",
                    scenario.name,
                    routing.label()
                );
            }
        }
    }
}

#[test]
fn parallel_reproduces_the_pinned_fault_corpus() {
    // the fault-injection acceptance bar: every fault-corpus cell —
    // including its dropped-on-fault and stranded-packet counts — must be
    // bit-identical to the committed fingerprints at workers {1, 2, 4}
    for workers in [1usize, 2, 4] {
        let mut expected = GOLDEN_FAULTS.iter();
        for scenario in fault_scenarios() {
            for routing in fault_routings() {
                let cfg = base_builder()
                    .routing(routing)
                    .scenario(&scenario)
                    .kernel(KernelMode::Parallel { workers })
                    .build()
                    .expect("valid configuration");
                let got = fault_fingerprint(cfg);
                let &(es, er, ed, edrop, einf, ec, el) =
                    expected.next().expect("one row per combination");
                assert_eq!(
                    (es, er),
                    (scenario.name.as_str(), routing.label()),
                    "table order drifted"
                );
                assert_eq!(
                    got,
                    (ed, edrop, einf, ec, el),
                    "parallel({workers}): {} under {} diverged from the pinned fault corpus",
                    scenario.name,
                    routing.label()
                );
            }
        }
        assert!(expected.next().is_none(), "stale fault-corpus rows");
    }
}

#[test]
fn parallel_reproduces_the_pinned_megafly_corpus() {
    // topology pluralism's acceptance bar: the second `Topology` instance
    // must satisfy the same cross-kernel bit-identity contract as the
    // Dragonfly — replay the pinned Megafly slice under the sharded kernel
    // at an even split and at a worker count that divides neither the 72
    // routers' 9 groups nor their leaves evenly
    for workers in [2usize, 7] {
        let mut expected = GOLDEN_MEGAFLY.iter();
        for routing in megafly_routings() {
            for pattern in megafly_patterns() {
                let cfg = megafly_base_builder()
                    .routing(routing)
                    .pattern(pattern)
                    .kernel(KernelMode::Parallel { workers })
                    .build()
                    .expect("valid megafly configuration");
                let got = fingerprint(cfg);
                let &(er, ep, ed, ec, el) = expected.next().expect("one row per combination");
                assert_eq!(er, routing.label(), "table order drifted");
                assert_eq!(ep, pattern.label(), "table order drifted");
                assert_eq!(
                    got,
                    (ed, ec, el),
                    "parallel({workers}): megafly {} under {} diverged from the pinned corpus",
                    routing.label(),
                    pattern.label()
                );
            }
        }
        assert!(expected.next().is_none(), "stale megafly rows");
    }
}

#[test]
fn parallel_reproduces_the_pinned_churn_corpus() {
    // the churn acceptance bar: ChurnModel-generated failure processes
    // (link churn + node failures with reroute-to-spare) disseminated by
    // hop-delayed flooding must be bit-identical to the committed
    // fingerprints — dropped, retargeted and stranded counts included — at
    // workers {1, 2, 4}
    for workers in [1usize, 2, 4] {
        let mut expected = GOLDEN_CHURN.iter();
        for scenario in churn_scenarios() {
            for routing in churn_routings() {
                let cfg = base_builder()
                    .routing(routing)
                    .scenario(&scenario)
                    .kernel(KernelMode::Parallel { workers })
                    .build()
                    .expect("valid configuration");
                let got = churn_fingerprint(cfg);
                let &(es, er, ed, edrop, eret, einf, ec, el) =
                    expected.next().expect("one row per combination");
                assert_eq!(
                    (es, er),
                    (scenario.name.as_str(), routing.label()),
                    "table order drifted"
                );
                assert_eq!(
                    got,
                    (ed, edrop, eret, einf, ec, el),
                    "parallel({workers}): {} under {} diverged from the pinned churn corpus",
                    scenario.name,
                    routing.label()
                );
            }
        }
        assert!(expected.next().is_none(), "stale churn-corpus rows");
    }
}

// ---------------------------------------------------------------------------
// Extended fingerprints across all three kernels
// ---------------------------------------------------------------------------

/// Everything that must match between two equivalent runs — a superset of
/// the corpus fingerprint, including the full latency histogram.
#[derive(Debug, PartialEq)]
struct RichFingerprint {
    delivered_window: u64,
    delivered_total: u64,
    generated_phits: u64,
    final_cycle: u64,
    in_flight: u64,
    pending_events: usize,
    latency_bits: u64,
    hops_bits: u64,
    p99_bits: u64,
    misroute_global_bits: u64,
    histogram_bins: Vec<u64>,
    drained: bool,
}

fn rich_fingerprint(cfg: SimulationConfig) -> RichFingerprint {
    let mut net = Network::new(cfg.clone());
    net.run_cycles(cfg.warmup_cycles);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(cfg.measurement_cycles);
    let drained = net.drain(100_000);
    let summary = net.metrics().window_summary();
    RichFingerprint {
        delivered_window: summary.delivered_packets,
        delivered_total: net.metrics().delivered_packets_total(),
        generated_phits: net.metrics().generated_phits_total,
        final_cycle: net.cycle(),
        in_flight: net.in_flight(),
        pending_events: net.pending_events(),
        latency_bits: summary.avg_packet_latency.to_bits(),
        hops_bits: summary.avg_hops.to_bits(),
        p99_bits: summary.p99_latency.to_bits(),
        misroute_global_bits: summary.global_misroute_fraction.to_bits(),
        histogram_bins: net.metrics().latency_histogram().bins().to_vec(),
        drained,
    }
}

fn injector_builder(injection: InjectionKind) -> df_sim::SimulationConfigBuilder {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Ectn)
        .schedule(TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            400,
        ))
        .injection(injection)
        .offered_load(0.25)
        .warmup_cycles(400)
        .measurement_cycles(400)
        .seed(21)
}

#[test]
fn parallel_matches_optimized_and_legacy_on_bursty_and_ramp_injection() {
    // ECtN routing (periodic broadcast) + a UN→ADV+1 switch + non-Bernoulli
    // injectors: exercises every parallel phase including the group-sharded
    // ECtN exchange and the drain fast-forward guard.
    for injection in [
        InjectionKind::Bursty {
            mean_on: 40.0,
            mean_off: 60.0,
        },
        InjectionKind::Ramp {
            start_fraction: 0.2,
            ramp_cycles: 500,
        },
    ] {
        let optimized = rich_fingerprint(
            injector_builder(injection)
                .kernel(KernelMode::Optimized)
                .build()
                .unwrap(),
        );
        let legacy = rich_fingerprint(
            injector_builder(injection)
                .kernel(KernelMode::Legacy)
                .build()
                .unwrap(),
        );
        assert_eq!(
            optimized, legacy,
            "{injection:?}: sequential kernels diverge"
        );
        for &workers in WORKER_COUNTS {
            let parallel = rich_fingerprint(
                injector_builder(injection)
                    .kernel(KernelMode::Parallel { workers })
                    .build()
                    .unwrap(),
            );
            assert_eq!(
                parallel, optimized,
                "{injection:?}: parallel({workers}) diverged from the sequential kernels"
            );
        }
    }
}

#[test]
fn parallel_matches_optimized_and_legacy_on_a_multi_phase_transient() {
    // Three phases with a per-phase load override under PB routing, whose
    // every-cycle dissemination forbids the drain fast-forward — the
    // control-plane-heavy corner of the phase pipeline.
    let run = |kernel: KernelMode| {
        let scenario = Scenario::named("UN-storm-UN")
            .injection(InjectionKind::Bursty {
                mean_on: 30.0,
                mean_off: 30.0,
            })
            .phase(PatternKind::Uniform, 300)
            .phase_at_load(PatternKind::Adversarial { offset: 1 }, 0.35, 300)
            .hold(PatternKind::Uniform);
        let cfg = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::PiggyBacking)
            .scenario(&scenario)
            .offered_load(0.15)
            .warmup_cycles(300)
            .measurement_cycles(600)
            .seed(5)
            .kernel(kernel)
            .build()
            .unwrap();
        rich_fingerprint(cfg)
    };
    let optimized = run(KernelMode::Optimized);
    assert_eq!(
        optimized,
        run(KernelMode::Legacy),
        "sequential kernels diverge"
    );
    for &workers in WORKER_COUNTS {
        assert_eq!(
            run(KernelMode::Parallel { workers }),
            optimized,
            "parallel({workers}) diverged on the multi-phase transient"
        );
    }
}

#[test]
fn every_worker_count_from_one_to_seven_agrees() {
    // worker-count independence proper: sweep the count densely on one
    // congested adversarial configuration and require exact agreement
    let run = |kernel: KernelMode| {
        let cfg = base_builder()
            .routing(RoutingKind::Base)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(0.35)
            .kernel(kernel)
            .build()
            .unwrap();
        rich_fingerprint(cfg)
    };
    let reference = run(KernelMode::Optimized);
    for workers in 1..=7usize {
        assert_eq!(
            run(KernelMode::Parallel { workers }),
            reference,
            "parallel({workers}) diverged from the optimized kernel"
        );
    }
}
