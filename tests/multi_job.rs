//! Multi-job traffic suite: concurrent collective applications with
//! node-disjoint placements sharing one network, layered over background
//! stochastic injection.
//!
//! Extends every correctness contract of the task layer to job sets:
//!
//! 1. **Completion and layering** — every corpus mix completes under every
//!    contention mechanism while background traffic keeps flowing (the
//!    delivered count strictly exceeds the jobs' lowered packets), with
//!    per-job completion cycles, stall distributions and labels.
//! 2. **The pinned corpus** — `GOLDEN_JOBS` in
//!    `tests/common/golden_corpus.rs` fingerprints every mix × routing cell
//!    on both topologies. The configurations do not set a [`KernelMode`],
//!    so CI replays the table under every kernel bit-for-bit.
//! 3. **Cross-kernel bit-identity** — optimized, legacy and parallel
//!    (1, 2 and 4 workers) kernels compared directly on the same job sets.
//! 4. **Snapshot/resume mid-run (format v4)** — a snapshot taken with jobs
//!    mid-collective resumes bit-identically under the same kernel and
//!    across kernels, and re-snapshotting a restored network reproduces
//!    the bytes exactly.
//! 5. **Interference** — the pinned 2-job cell's per-job completion time is
//!    strictly worse shared than solo, under every kernel, and the
//!    slowdown-vs-isolation report says so.
//! 6. **Degenerate inputs** — zero-rank and single-rank collectives are
//!    rejected at validation (and their lowerings cannot panic), a job
//!    whose `start_cycle` falls after the cycle budget reports honestly,
//!    and overlapping placements are a build-time [`ConfigError`].
//!
//! Regenerate the pinned table after an intentional semantics change with
//!
//! ```text
//! cargo test --release --test multi_job -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants into `tests/common/golden_corpus.rs` in
//! the same commit.
//!
//! [`KernelMode`]: contention_dragonfly::prelude::KernelMode
//! [`ConfigError`]: contention_dragonfly::prelude::ConfigError

use contention_dragonfly::prelude::*;

#[path = "common/golden_corpus.rs"]
#[allow(dead_code)]
mod golden_corpus;

use golden_corpus::{
    interference_jobs, job_mixes, job_routings, job_set_config, job_set_fingerprint,
    megafly_job_set_config, GOLDEN_JOBS,
};

// ---------------------------------------------------------------------------
// 1. completion and layering over background traffic
// ---------------------------------------------------------------------------

#[test]
fn every_job_mix_completes_under_every_mechanism() {
    for (mix, jobs) in job_mixes() {
        let task_packets: u64 = jobs.iter().map(|j| j.workload.total_packets()).sum();
        for routing in job_routings() {
            let cfg = job_set_config(jobs.clone(), routing);
            let report = run_job_set(cfg, 200_000);
            let label = format!("{mix} under {}", routing.label());
            assert!(report.all_completed, "{label} did not complete");
            assert_eq!(report.jobs.len(), jobs.len(), "{label}: job count");
            for (job, spec) in report.jobs.iter().zip(&jobs) {
                assert_eq!(job.label, spec.label(), "{label}: job labels");
                assert!(job.completed, "{label}: job {} incomplete", job.label);
                let done = job.completion_cycle.unwrap();
                assert!(
                    done >= spec.start_cycle,
                    "{label}: job {} finished before it started",
                    job.label
                );
                assert_eq!(job.elapsed_cycles, Some(done - spec.start_cycle));
                assert!(
                    job.total_stall_cycles > 0,
                    "{label}: ranks of {} crossed a real network",
                    job.label
                );
            }
            // jobs layer OVER stochastic generation: background packets
            // must have been delivered on top of the lowered task packets
            assert!(
                report.delivered_packets > task_packets,
                "{label}: background traffic must keep flowing \
                 ({} delivered vs {task_packets} task packets)",
                report.delivered_packets
            );
        }
    }
}

#[test]
fn jobs_ride_the_scenario_matrix_axis() {
    let jobs = job_mixes().remove(0).1;
    let scenario = Scenario::named("2job-mix").hold(PatternKind::Uniform);
    let scenario = jobs.iter().cloned().fold(scenario, Scenario::job);
    let base = job_set_config(jobs, RoutingKind::Base);
    let matrix = ScenarioMatrix {
        scenarios: vec![scenario],
        loads: vec![0.2],
        routings: vec![RoutingKind::Base, RoutingKind::Ectn],
        ..ScenarioMatrix::new(base)
    };
    let cells = matrix.cells();
    assert_eq!(cells.len(), 2);
    for (key, cfg) in cells {
        assert_eq!(cfg.jobs.len(), 2, "cell {key:?} lost the scenario's jobs");
        cfg.validate().expect("matrix cells stay valid");
    }
}

// ---------------------------------------------------------------------------
// 2. the pinned corpus
// ---------------------------------------------------------------------------

/// Every corpus cell in pinned order: Dragonfly mixes × routings, Megafly
/// mixes × routings, then the interference cell under Base on both
/// topologies.
fn corpus_cells() -> Vec<(&'static str, String, &'static str, SimulationConfig)> {
    let mut cells = Vec::new();
    for (mix, jobs) in job_mixes() {
        for routing in job_routings() {
            cells.push((
                "dragonfly",
                mix.to_string(),
                routing.label(),
                job_set_config(jobs.clone(), routing),
            ));
        }
    }
    for (mix, jobs) in job_mixes() {
        for routing in job_routings() {
            cells.push((
                "megafly",
                mix.to_string(),
                routing.label(),
                megafly_job_set_config(jobs.clone(), routing),
            ));
        }
    }
    cells.push((
        "dragonfly",
        "interfere".to_string(),
        RoutingKind::Base.label(),
        job_set_config(interference_jobs(), RoutingKind::Base),
    ));
    cells.push((
        "megafly",
        "interfere".to_string(),
        RoutingKind::Base.label(),
        megafly_job_set_config(interference_jobs(), RoutingKind::Base),
    ));
    cells
}

#[test]
fn golden_multi_job_corpus() {
    let mut expected = GOLDEN_JOBS.iter();
    for (topo, mix, routing, cfg) in corpus_cells() {
        let got = job_set_fingerprint(cfg);
        let &(et, em, er, makespan, sum, delivered, stalls, lat) =
            expected.next().expect("one row per corpus cell");
        assert_eq!(
            (et, em, er),
            (topo, mix.as_str(), routing),
            "table order drifted"
        );
        assert_eq!(
            got,
            (makespan, sum, delivered, stalls, lat),
            "{mix} under {routing} on {topo} diverged from the pinned corpus"
        );
    }
    assert!(expected.next().is_none(), "stale rows in the pinned table");
}

/// Regeneration helper (see the module docs).
#[test]
#[ignore = "regenerates the pinned multi-job corpus"]
fn regenerate_multi_job_corpus() {
    println!("pub const GOLDEN_JOBS: &[(&str, &str, &str, u64, u64, u64, u64, u64)] = &[");
    println!(
        "    // (topology, mix, routing, makespan, completion_sum, delivered, job_stalls, latency_bits)"
    );
    for (topo, mix, routing, cfg) in corpus_cells() {
        let (makespan, sum, delivered, stalls, lat) = job_set_fingerprint(cfg);
        println!(
            "    ({topo:?}, {mix:?}, {routing:?}, {makespan}, {sum}, {delivered}, {stalls}, {lat:#018X}),"
        );
    }
    println!("];");
}

// ---------------------------------------------------------------------------
// 3. cross-kernel bit-identity
// ---------------------------------------------------------------------------

#[test]
fn job_sets_are_bit_identical_across_kernels() {
    let kernels = [
        KernelMode::Optimized,
        KernelMode::Legacy,
        KernelMode::Parallel { workers: 1 },
        KernelMode::Parallel { workers: 2 },
        KernelMode::Parallel { workers: 4 },
    ];
    let (_, jobs) = job_mixes().remove(1);
    for routing in [RoutingKind::Base, RoutingKind::PiggyBacking] {
        let mut cfg = job_set_config(jobs.clone(), routing);
        cfg.kernel = KernelMode::Optimized;
        let reference = job_set_fingerprint(cfg.clone());
        for kernel in kernels {
            let mut k = cfg.clone();
            k.kernel = kernel;
            assert_eq!(
                job_set_fingerprint(k),
                reference,
                "3-job mix under {} diverged on {kernel:?}",
                routing.label()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 4. snapshot / resume mid-run (format v4)
// ---------------------------------------------------------------------------

#[test]
fn snapshot_mid_jobs_resumes_bit_identically() {
    let (_, jobs) = job_mixes().remove(1);
    let cfg = job_set_config(jobs, RoutingKind::PiggyBacking);

    // uninterrupted reference
    let mut reference = Network::new(cfg.clone());
    reference.metrics_mut().start_measurement(0);
    let done = reference
        .run_until_jobs_complete(200_000)
        .expect("reference completes");

    // interrupted run: snapshot halfway, with jobs mid-collective
    let mut first = Network::new(cfg.clone());
    first.metrics_mut().start_measurement(0);
    first.run_cycles(done / 2);
    let engine = first.jobs().expect("jobs configured");
    assert!(
        engine.pending_packets() > 0 && !engine.is_complete(),
        "checkpoint must land mid-collective for this test to bite"
    );
    let bytes = first.snapshot();
    drop(first);

    let mut resumed = Network::restore(cfg.clone(), &bytes).expect("snapshot restores");
    let resumed_done = resumed
        .run_until_jobs_complete(200_000)
        .expect("resumed run completes");
    assert_eq!(resumed_done, done, "makespan must match");
    assert_eq!(
        resumed.metrics().delivered_packets_total(),
        reference.metrics().delivered_packets_total()
    );
    for i in 0..reference.jobs().unwrap().num_jobs() {
        assert_eq!(
            resumed.jobs().unwrap().engine(i).completion_cycle(),
            reference.jobs().unwrap().engine(i).completion_cycle(),
            "job {i} completion cycle must match"
        );
        assert_eq!(
            resumed.jobs().unwrap().engine(i).stall_cycles(),
            reference.jobs().unwrap().engine(i).stall_cycles(),
            "job {i} per-rank stall totals must match"
        );
    }
    // restore followed by snapshot reproduces the bytes exactly
    let restored = Network::restore(cfg.clone(), &bytes).expect("snapshot restores");
    assert_eq!(
        restored.snapshot(),
        bytes,
        "v4 round-trip is byte-identical"
    );

    // kernel portability: finish the same snapshot under legacy and parallel
    for kernel in [KernelMode::Legacy, KernelMode::Parallel { workers: 2 }] {
        let mut k = cfg.clone();
        k.kernel = kernel;
        let mut n = Network::restore(k, &bytes).expect("snapshot restores under any kernel");
        assert_eq!(
            n.run_until_jobs_complete(200_000),
            Some(done),
            "{kernel:?} resumed to a different makespan"
        );
        assert_eq!(
            n.metrics().delivered_packets_total(),
            reference.metrics().delivered_packets_total()
        );
    }
}

#[test]
fn job_snapshot_rejects_configuration_disagreement() {
    let (_, jobs) = job_mixes().remove(0);
    let cfg = job_set_config(jobs, RoutingKind::Base);
    let mut net = Network::new(cfg.clone());
    net.run_cycles(50);
    let bytes = net.snapshot();

    // same topology and traffic, but no job set: the restore must refuse.
    // The job list is part of the configuration fingerprint, so the
    // refusal happens at the outermost guard (the per-section presence
    // check behind it is defence in depth).
    let mut plain = cfg.clone();
    plain.jobs = Vec::new();
    let err = match Network::restore(plain, &bytes) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("restore without the job set must be refused"),
    };
    assert!(
        err.contains("different configuration"),
        "error must name the configuration disagreement: {err}"
    );
}

// ---------------------------------------------------------------------------
// 5. interference: shared strictly worse than solo
// ---------------------------------------------------------------------------

#[test]
fn pinned_interference_cell_is_strictly_worse_than_solo() {
    let kernels = [
        KernelMode::Optimized,
        KernelMode::Legacy,
        KernelMode::Parallel { workers: 4 },
    ];
    let mut cfg = job_set_config(interference_jobs(), RoutingKind::Base);
    cfg.kernel = KernelMode::Optimized;
    let reference = run_interference(cfg.clone(), 200_000);
    for (i, solo) in reference.solo.iter().enumerate() {
        let shared = &reference.shared.jobs[i];
        assert!(shared.completed && solo.completed, "both runs complete");
        assert!(
            shared.elapsed_cycles.unwrap() > solo.elapsed_cycles.unwrap(),
            "job {} must be strictly slower shared ({:?}) than solo ({:?})",
            shared.label,
            shared.elapsed_cycles,
            solo.elapsed_cycles
        );
        let slowdown = reference.slowdown(i).unwrap();
        assert!(
            slowdown > 1.0,
            "job {} slowdown must exceed 1.0, got {slowdown}",
            shared.label
        );
    }

    // the comparison itself is bit-identical across kernels
    let fingerprint = |r: &InterferenceReport| -> Vec<(Option<u64>, Option<u64>)> {
        (0..r.solo.len())
            .map(|i| (r.shared.jobs[i].elapsed_cycles, r.solo[i].elapsed_cycles))
            .collect()
    };
    let expected = fingerprint(&reference);
    for kernel in kernels {
        let mut k = cfg.clone();
        k.kernel = kernel;
        assert_eq!(
            fingerprint(&run_interference(k, 200_000)),
            expected,
            "interference comparison diverged on {kernel:?}"
        );
    }

    // and survives a mid-run snapshot/resume byte-identically
    let mut first = Network::new(cfg.clone());
    first.metrics_mut().start_measurement(0);
    let done = reference.shared.makespan.unwrap();
    first.run_cycles(done / 2);
    assert!(!first.jobs().unwrap().is_complete());
    let bytes = first.snapshot();
    let restored = Network::restore(cfg.clone(), &bytes).expect("snapshot restores");
    assert_eq!(restored.snapshot(), bytes);
    let mut resumed = Network::restore(cfg, &bytes).expect("snapshot restores");
    assert_eq!(resumed.run_until_jobs_complete(200_000), Some(done));
}

// ---------------------------------------------------------------------------
// 6. degenerate inputs
// ---------------------------------------------------------------------------

#[test]
fn zero_and_single_rank_collectives_are_rejected_but_cannot_panic() {
    for ranks in [0, 1] {
        for kind in [
            CollectiveKind::AllToAll,
            CollectiveKind::AllReduce(AllReduceAlgorithm::Ring),
            CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
            CollectiveKind::Barrier,
            CollectiveKind::SweepNeighbors,
        ] {
            let w = TaskWorkload::single(kind, ranks, 1);
            assert!(
                w.validate(9, 8).is_err(),
                "{} with {ranks} ranks must be rejected",
                w.label()
            );
            // the lowering and step accounting must not underflow even for
            // inputs validation rejects (defence in depth)
            let scripts = w.lower();
            assert_eq!(scripts.len(), ranks as usize);
            let _ = w.total_steps();
            let _ = w.total_packets();
        }
    }
}

#[test]
fn job_with_zero_rank_workload_is_a_config_error() {
    let jobs = vec![JobSpec::new(
        TaskWorkload::single(CollectiveKind::Barrier, 0, 1),
        JobPlacement::block(0),
    )];
    let err = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .offered_load(0.2)
        .warmup_cycles(100)
        .measurement_cycles(100)
        .seed(1)
        .jobs(jobs)
        .build()
        .unwrap_err();
    assert!(matches!(err, ConfigError::Workload(_)), "got {err:?}");
}

#[test]
fn job_starting_after_the_cycle_budget_reports_honestly() {
    let jobs = vec![JobSpec::new(
        TaskWorkload::single(CollectiveKind::Barrier, 4, 1),
        JobPlacement::block(0),
    )
    .starting_at(10_000)];
    let cfg = job_set_config(jobs, RoutingKind::Base);
    let report = run_job_set(cfg, 500);
    assert!(!report.all_completed, "the job never started");
    assert!(report.makespan.is_none());
    let job = &report.jobs[0];
    assert!(!job.completed);
    assert_eq!(job.completion_cycle, None);
    assert_eq!(job.elapsed_cycles, None);
    assert_eq!(
        job.total_stall_cycles, 0,
        "a job that never starts cannot have stalled"
    );
}

#[test]
fn overlapping_job_placements_are_a_build_time_config_error() {
    let w = TaskWorkload::single(CollectiveKind::Barrier, 8, 1);
    let jobs = vec![
        JobSpec::new(w.clone(), JobPlacement::block(0)),
        JobSpec::new(w, JobPlacement::block(4)),
    ];
    let err = job_set_config_err(jobs);
    match err {
        ConfigError::Workload(msg) => {
            assert!(msg.contains("node 4"), "error names the node: {msg}");
        }
        other => panic!("expected a Workload error, got {other:?}"),
    }
}

#[test]
fn workload_and_jobs_are_mutually_exclusive() {
    let w = TaskWorkload::single(CollectiveKind::Barrier, 8, 1);
    let err = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .offered_load(0.2)
        .warmup_cycles(100)
        .measurement_cycles(100)
        .seed(1)
        .workload(w.clone())
        .job(JobSpec::new(w, JobPlacement::block(16)))
        .build()
        .unwrap_err();
    match err {
        ConfigError::Workload(msg) => {
            assert!(msg.contains("mutually exclusive"), "got: {msg}");
        }
        other => panic!("expected a Workload error, got {other:?}"),
    }
}

/// Build the corpus configuration without panicking on validation failure.
fn job_set_config_err(jobs: Vec<JobSpec>) -> ConfigError {
    SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .offered_load(0.2)
        .warmup_cycles(200)
        .measurement_cycles(400)
        .seed(11)
        .jobs(jobs)
        .build()
        .unwrap_err()
}

// ---------------------------------------------------------------------------
// stall-distribution reporting inherits the histogram overflow fix
// ---------------------------------------------------------------------------

#[test]
fn stall_percentiles_route_through_the_histogram_overflow_contract() {
    let (_, jobs) = job_mixes().remove(0);
    let cfg = job_set_config(jobs, RoutingKind::Base);
    let report = run_job_set(cfg, 200_000);
    for job in &report.jobs {
        let p50 = job.stall_percentile(50.0);
        assert!(p50.is_finite() && p50 >= 0.0, "in-range percentile");
    }
    // a synthetic report whose stalls exceed the histogram range must
    // report the tail as unbounded, not silently clamp to the top edge
    let mut job = report.jobs[0].clone();
    job.rank_stall_cycles = vec![1_000_000; 8];
    assert_eq!(job.stall_percentile(99.0), f64::INFINITY);
}
