//! Building and inspecting custom Dragonfly topologies, and running the
//! simulator programmatically cycle by cycle.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_topology
//! ```

use contention_dragonfly::prelude::*;
use df_topology::path::{hop_census, minimal_path, valiant_path};

fn main() {
    // --- 1. a custom, partially-populated Dragonfly ---------------------
    // Constructing the concrete `Dragonfly` directly is fine for
    // family-specific inspection like this; topology-agnostic code should
    // instead take `TopologyParams` and call `.build()` to get an
    // `AnyTopology` behind the `Topology` trait (see `MegaflyParams` for the
    // second family).
    let params = DragonflyParams::new(3, 6, 3, 13).expect("valid parameters");
    let topo = Dragonfly::new(params);
    println!(
        "custom Dragonfly: p={} a={} h={} groups={} (of max {}), {} nodes, radix {}",
        params.p,
        params.a,
        params.h,
        params.groups,
        params.a * params.h + 1,
        topo.num_nodes(),
        params.radix()
    );

    // path-length census over a sample of router pairs
    let mut minimal_hops = RunningStats::new();
    let mut valiant_hops = RunningStats::new();
    let routers: Vec<RouterId> = topo.routers().collect();
    for (i, &src) in routers.iter().enumerate() {
        for &dst in routers.iter().skip(i + 1).step_by(7) {
            let min = minimal_path(&topo, src, dst);
            let (l, g) = hop_census(&min);
            minimal_hops.push((l + g) as f64);
            let inter = routers[(i * 31 + 7) % routers.len()];
            let val = valiant_path(&topo, src, inter, dst);
            valiant_hops.push(val.len() as f64);
        }
    }
    println!(
        "minimal path hops: mean {:.2}, max {:.0}; Valiant path hops: mean {:.2}, max {:.0}\n",
        minimal_hops.mean(),
        minimal_hops.max(),
        valiant_hops.mean(),
        valiant_hops.max()
    );

    // --- 2. drive the simulator manually --------------------------------
    let config = SimulationConfig::builder()
        .topology(params)
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .offered_load(0.25)
        .warmup_cycles(0)
        .measurement_cycles(4_000)
        .seed(7)
        .build()
        .expect("valid configuration");
    let mut net = Network::new(config);
    net.metrics_mut().start_measurement(0);

    // step cycle by cycle and sample the total contention every 500 cycles —
    // the kind of instrumentation a routing researcher would add
    for cycle in 0..4_000u64 {
        net.step();
        if cycle % 500 == 499 {
            println!(
                "cycle {:>5}: delivered {:>6} packets, {:>5} in flight, total contention {}",
                cycle + 1,
                net.metrics().delivered_packets_total(),
                net.in_flight(),
                net.total_contention()
            );
        }
    }
    let summary = net.metrics().window_summary();
    println!(
        "\nfinal: latency {:.1} cycles (p99 {:.0}), accepted load {:.3} phits/node/cycle, \
         {:.1}% globally misrouted",
        summary.avg_packet_latency,
        summary.p99_latency,
        net.metrics().accepted_load(topo.num_nodes(), 4_000),
        summary.global_misroute_fraction * 100.0
    );

    // --- 3. drain and verify the invariants ------------------------------
    let drained = net.drain(50_000);
    println!(
        "drained: {drained}, in flight {}, total contention {}",
        net.in_flight(),
        net.total_contention()
    );
    assert!(drained, "the network must drain once traffic stops");
    assert_eq!(net.total_contention(), 0);
}
