//! Diagnostic harness: run every routing mechanism under adversarial traffic
//! and verify the network drains, printing where packets are stuck if not.
//! Useful when developing new routing policies.

use contention_dragonfly::prelude::*;

fn main() {
    for routing in RoutingKind::ALL {
        let config = SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(0.3)
            .warmup_cycles(0)
            .measurement_cycles(1_500)
            .seed(11)
            .build()
            .unwrap();
        let mut net = Network::new(config);
        net.metrics_mut().start_measurement(0);
        net.run_cycles(1_500);
        let drained = net.drain(100_000);
        println!(
            "{:>6}: drained={} in_flight={} delivered={} generated={} contention={}",
            routing.label(),
            drained,
            net.in_flight(),
            net.metrics().delivered_packets_total(),
            net.metrics().generated_phits_total / 8,
            net.total_contention(),
        );
        if !drained {
            // print where packets are stuck
            let topo = *net.topology();
            let mut stuck = 0;
            for r in topo.routers() {
                let router = net.router(r);
                for port in Port::all(topo.params()) {
                    let input = router.input(port);
                    for vc in 0..input.num_vcs() {
                        if !input.vc(vc).is_empty() {
                            let head = input.vc(vc).head().unwrap();
                            stuck += 1;
                            if stuck <= 300 {
                                println!(
                                    "  stuck at {r} {port}({:?}) vc{vc}: {} pkts, head dst={} hops l{}g{} state={:?}",
                                    input.class(),
                                    input.vc(vc).len(),
                                    head.dst,
                                    head.routing.local_hops,
                                    head.routing.global_hops,
                                    (head.routing.nonminimal_global, head.routing.local_detour, head.routing.intermediate_router),
                                );
                            }
                        }
                    }
                    let output = router.output(port);
                    if output.staged_packets() > 0 {
                        println!(
                            "  output {r} {port}: {} staged, link_free_at={}",
                            output.staged_packets(),
                            output.link_free_at()
                        );
                    }
                }
            }
            println!("  total occupied input VCs: {stuck}");
            // credit state of the first few routers
            for r in topo.routers() {
                let router = net.router(r);
                for port in Port::all(topo.params()) {
                    let out = router.output(port);
                    let creds: Vec<u32> = (0..out.num_downstream_vcs())
                        .map(|v| out.credits(VcId(v as u8)))
                        .collect();
                    if out.staged_packets() > 0
                        || creds
                            .iter()
                            .zip(0..)
                            .any(|(c, v)| *c != out.credit_capacity(VcId(v as u8)))
                    {
                        println!(
                            "  credits {r} {port} ({:?}): staged={} buf={}/{} credits={:?} link_free_at={}",
                            port.class(topo.params()),
                            out.staged_packets(),
                            out.buffer_occupancy_phits(),
                            out.buffer_capacity_phits(),
                            creds,
                            out.link_free_at(),
                        );
                    }
                }
            }
            for node in topo.nodes() {
                let n = net.node(node);
                if n.queue_len() > 0 && stuck <= 40 {
                    println!("  node {node}: source queue {}", n.queue_len());
                }
            }
        }
    }
}
