//! Transient adaptation: how fast does each misrouting trigger react when the
//! traffic pattern suddenly turns adversarial?
//!
//! Reproduces the scenario of the paper's Figure 7 at reduced scale: the
//! network warms up with uniform traffic at 20 % load and switches to ADV+1
//! at cycle 0. Credit-based triggers (OLM, PB) need the minimal-path queues
//! to fill before they react; contention counters (Base, ECtN) see the demand
//! at the queue heads immediately.
//!
//! Run with:
//! ```text
//! cargo run --release --example adversarial_shift
//! ```

use contention_dragonfly::prelude::*;

fn main() {
    let topology = DragonflyParams::small();
    let switch_at = 4_000u64;
    let follow = 2_000u64;
    let load = 0.20;

    let mut table = Table::new(
        "UN -> ADV+1 transient at 20% load (relative cycles)",
        &[
            "routing",
            "latency before",
            "latency 0..200",
            "latency 200..1000",
            "% misrouted 200..1000",
            "cycles to 50% misrouted",
        ],
    );

    for routing in [
        RoutingKind::PiggyBacking,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Hybrid,
        RoutingKind::Ectn,
    ] {
        let schedule = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            switch_at,
        );
        let config = SimulationConfig::builder()
            .topology(topology)
            .routing(routing)
            .schedule(schedule)
            .offered_load(load)
            .warmup_cycles(switch_at)
            .measurement_cycles(follow)
            .seed(1)
            .build()
            .expect("valid configuration");
        let report = TransientExperiment::new(config, follow).run();
        let reach = report
            .misroute_reaches(50.0)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "never".to_string());
        table.push_row(vec![
            routing.label().to_string(),
            format!("{:.0}", report.mean_latency_between(-1_000, 0)),
            format!("{:.0}", report.mean_latency_between(0, 200)),
            format!("{:.0}", report.mean_latency_between(200, 1_000)),
            format!("{:.0}%", report.mean_misroute_between(200, 1_000)),
            reach,
        ]);
    }

    println!("{}", table.to_text());
    println!(
        "Expected shape (paper, Figure 7): Base/Hybrid commit to misrouting within a few tens of\n\
         cycles after the change, ECtN follows Base until the next partial-array broadcast, while\n\
         OLM and PB need hundreds of cycles for their buffers to fill and their latency spike is\n\
         correspondingly longer."
    );
}
