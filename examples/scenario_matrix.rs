//! Scenario-matrix tour: compose workloads declaratively, then run the whole
//! pattern × load × routing cross product in parallel with deterministic
//! per-cell seeding.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_matrix
//! ```

use contention_dragonfly::prelude::*;

fn main() {
    // ---- 1. composable workloads ----------------------------------------
    // A Scenario is the workload half of an experiment: which pattern is
    // active when, at what load, under which injection process. Phases are
    // expressed by duration, so appending one never renumbers the others.
    let steady_hotspot = Scenario::steady(PatternKind::Hotspot {
        hotspots: 4,
        fraction: 0.5,
    });
    let bursty_uniform = Scenario::named("UN-bursty")
        .injection(InjectionKind::Bursty {
            mean_on: 50.0,
            mean_off: 50.0,
        })
        .hold(PatternKind::Uniform);
    let transient = Scenario::transient(
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        400,
    );
    // A three-phase storm: warm up uniform, spike adversarial at double
    // load, then relax back to uniform.
    let storm = Scenario::named("UN-storm-UN")
        .phase(PatternKind::Uniform, 400)
        .phase_at_load(PatternKind::Adversarial { offset: 1 }, 0.4, 400)
        .hold(PatternKind::Uniform);
    println!(
        "storm switches at cycles {:?}, injection {}",
        storm.switch_points(),
        storm.injection.label()
    );

    // ---- 2. the machine under test ---------------------------------------
    let base = SimulationConfig::builder()
        .topology(DragonflyParams::small())
        .network(NetworkConfig::fast_test())
        .warmup_cycles(300)
        .measurement_cycles(600)
        .seed(1)
        .build()
        .expect("valid base configuration");

    // ---- 3. the matrix ---------------------------------------------------
    let matrix = ScenarioMatrix {
        base,
        scenarios: vec![steady_hotspot, bursty_uniform, transient, storm],
        loads: vec![0.1, 0.3],
        routings: vec![RoutingKind::Minimal, RoutingKind::Base, RoutingKind::Ectn],
        seeds_per_cell: 1,
    };
    println!(
        "running {} cells on up to {} threads...",
        matrix.num_cells(),
        df_sim::num_threads()
    );

    // Every cell's seed depends only on (base seed, scenario, load, routing)
    // — not on thread scheduling — so this table reproduces bit-for-bit.
    let cells = run_matrix(&matrix, df_sim::num_threads());
    let table = matrix_table("scenario matrix (small, seed 1)", &cells);
    println!("{}", table.to_text());

    // ---- 4. reading a cell back ------------------------------------------
    let worst = cells
        .iter()
        .max_by(|a, b| {
            a.report
                .avg_packet_latency
                .total_cmp(&b.report.avg_packet_latency)
        })
        .expect("matrix is non-empty");
    println!(
        "highest mean latency: {:.1} cycles — {} under {} at load {:.2} (cell seed {})",
        worst.report.avg_packet_latency,
        worst.key.routing.label(),
        worst.key.scenario,
        worst.key.load,
        worst.key.seed,
    );
}
