//! Routing oscillations: ECN-style feedback (PiggyBacking) versus Explicit
//! Contention Notification (ECtN) — the paper's Figure 9.
//!
//! PB's routing decision depends on congestion state that its own decisions
//! create (a feedback loop closed over the queue drain time), so after a
//! traffic change its latency oscillates before settling. ECtN's control
//! variable — contention, the demand observed at queue heads — does not
//! depend on which path the packets finally take, so after the first
//! partial-array broadcast its latency is flat.
//!
//! Run with:
//! ```text
//! cargo run --release --example ectn_oscillation
//! ```

use contention_dragonfly::prelude::*;

fn main() {
    let topology = DragonflyParams::small();
    let switch_at = 4_000u64;
    let follow = 6_000u64;

    let mut reports = Vec::new();
    for routing in [RoutingKind::PiggyBacking, RoutingKind::Ectn] {
        let schedule = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            switch_at,
        );
        let config = SimulationConfig::builder()
            .topology(topology)
            .routing(routing)
            .schedule(schedule)
            .offered_load(0.20)
            .warmup_cycles(switch_at)
            .measurement_cycles(follow)
            .seed(4)
            .build()
            .expect("valid configuration");
        reports.push(TransientExperiment::new(config, follow).run());
    }

    // print the latency evolution side by side, in 250-cycle windows
    let mut table = Table::new(
        "Latency after the UN->ADV+1 change (250-cycle windows)",
        &["window start", "PB", "ECtN"],
    );
    let mut window = 0i64;
    while window < follow as i64 - 250 {
        table.push_row(vec![
            window.to_string(),
            format!(
                "{:.0}",
                reports[0].mean_latency_between(window, window + 250)
            ),
            format!(
                "{:.0}",
                reports[1].mean_latency_between(window, window + 250)
            ),
        ]);
        window += 250;
    }
    println!("{}", table.to_text());

    // quantify the oscillation: standard deviation of the window means after
    // convergence (skip the first 1000 cycles)
    for report in &reports {
        let mut stats = RunningStats::new();
        let mut w = 1_000i64;
        while w < follow as i64 - 250 {
            let m = report.mean_latency_between(w, w + 250);
            if m.is_finite() {
                stats.push(m);
            }
            w += 250;
        }
        println!(
            "{:>4}: post-convergence window-mean latency = {:.0} ± {:.1} cycles (std dev)",
            report.routing.label(),
            stats.mean(),
            stats.std_dev()
        );
    }
    println!(
        "\nExpected shape (paper, Figure 9): PB's latency swings periodically as the saturation\n\
         flags flip with the queue levels; ECtN converges to a flat line after the first\n\
         partial-counter broadcast."
    );
}
