//! Quickstart: simulate a small Dragonfly under adversarial traffic and
//! compare minimal routing with the paper's contention-based Base mechanism.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use contention_dragonfly::prelude::*;

fn main() {
    // A 9-group, 72-node Dragonfly (p=2, a=4, h=2) keeps the example fast;
    // swap in `DragonflyParams::paper_table1()` for the 16,512-node network
    // of the paper (and expect a long run).
    let topology = DragonflyParams::small();
    println!(
        "Dragonfly p={} a={} h={}: {} groups, {} routers, {} nodes, radix {}",
        topology.p,
        topology.a,
        topology.h,
        topology.num_groups(),
        topology.num_routers(),
        topology.num_nodes(),
        topology.radix()
    );

    // ADV+1: every node sends to the next group, saturating one global link
    // per group under minimal routing.
    let pattern = PatternKind::Adversarial { offset: 1 };
    let load = 0.30; // phits per node per cycle

    let mut table = Table::new(
        format!("{} at load {:.2}", pattern.label(), load),
        &[
            "routing",
            "latency (cycles)",
            "accepted load",
            "% misrouted",
        ],
    );

    for routing in [
        RoutingKind::Minimal,
        RoutingKind::Valiant,
        RoutingKind::Base,
    ] {
        let config = SimulationConfig::builder()
            .topology(topology)
            .routing(routing)
            .pattern(pattern)
            .offered_load(load)
            .warmup_cycles(3_000)
            .measurement_cycles(6_000)
            .seed(1)
            .build()
            .expect("valid configuration");
        let report = SteadyStateExperiment::new(config).run();
        table.push_row(vec![
            routing.label().to_string(),
            format!("{:.1}", report.avg_packet_latency),
            format!("{:.3}", report.accepted_load),
            format!("{:.0}%", report.global_misroute_fraction * 100.0),
        ]);
    }

    println!("\n{}", table.to_text());
    println!(
        "Expected shape (paper, Figure 5b): MIN saturates at ~1/(a*p) = {:.3} phits/node/cycle,\n\
         VAL and Base sustain close to the 0.5 Valiant limit, and Base keeps latency competitive\n\
         because contention counters divert traffic before queues fill.",
        topology.adversarial_min_throughput_limit()
    );
}
