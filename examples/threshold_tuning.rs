//! Misrouting-threshold sensitivity of the Base mechanism (paper §VI-A and
//! Figure 10).
//!
//! Low thresholds misroute too eagerly and hurt uniform traffic; high
//! thresholds react too late (or never) under adversarial traffic. The paper
//! picks the lowest threshold that does not degrade uniform traffic:
//! th = 2 × (mean VCs per input port).
//!
//! Run with:
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use contention_dragonfly::prelude::*;

fn main() {
    let topology = DragonflyParams::small();
    let vcs = NetworkConfig::paper_table1().vcs;

    println!(
        "Analytical guidance (paper §VI-A): mean VCs/port = {:.2}, suggested lower bound = {}, \
         adversarial upper bound = {}\n",
        df_routing::analysis::expected_saturation_counter(&topology, &vcs),
        df_routing::analysis::threshold_lower_bound(&topology, &vcs),
        df_routing::analysis::threshold_upper_bound(&topology, &vcs),
    );

    let thresholds = [2u32, 3, 4, 5, 6];
    let mut table = Table::new(
        "Base threshold sensitivity (latency in cycles / accepted load)",
        &[
            "th",
            "UN @0.30",
            "UN accepted @0.60",
            "ADV+1 @0.20",
            "ADV+1 accepted @0.40",
        ],
    );

    for th in thresholds {
        let routing_config =
            RoutingConfig::calibrated_for(&topology, &vcs).with_contention_threshold(th);
        let run = |pattern: PatternKind, load: f64, measure_latency: bool| -> f64 {
            let config = SimulationConfig::builder()
                .topology(topology)
                .routing(RoutingKind::Base)
                .routing_config(routing_config)
                .pattern(pattern)
                .offered_load(load)
                .warmup_cycles(3_000)
                .measurement_cycles(5_000)
                .seed(2)
                .build()
                .expect("valid configuration");
            let report = SteadyStateExperiment::new(config).run();
            if measure_latency {
                report.avg_packet_latency
            } else {
                report.accepted_load
            }
        };
        table.push_row(vec![
            th.to_string(),
            format!("{:.0}", run(PatternKind::Uniform, 0.30, true)),
            format!("{:.3}", run(PatternKind::Uniform, 0.60, false)),
            format!(
                "{:.0}",
                run(PatternKind::Adversarial { offset: 1 }, 0.20, true)
            ),
            format!(
                "{:.3}",
                run(PatternKind::Adversarial { offset: 1 }, 0.40, false)
            ),
        ]);
    }

    println!("{}", table.to_text());
    println!(
        "Expected shape (paper, Figure 10): uniform-traffic latency/throughput improve as th grows\n\
         (fewer spurious misroutes), adversarial latency degrades once th is too high to be reached\n\
         by the injection ports' demand. Pick the lowest threshold that keeps UN unharmed."
    );
}
