//! Vendored `rand` stub: the trait surface and `SmallRng` generator used by
//! `df-engine`.
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same algorithm
//! the real `rand::rngs::SmallRng` uses on 64-bit platforms — so swapping the
//! real crate back in preserves every random stream. See `vendor/README.md`.

use core::ops::Range;

/// Core generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (identical to the
    /// real `rand` implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Vigna): the constant set rand uses for seeding.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain (stand-in for the
/// `Standard` distribution).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as the real rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `gen_range(low..high)`.
pub trait UniformInt: Copy + PartialOrd {
    /// Draw uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

#[inline]
fn widening_bounded(rng_draw: u64, bound: u64) -> u64 {
    // Lemire multiply-shift: maps a full-width draw onto [0, bound) with
    // bias below 2^-32 for the bounds a network simulator uses.
    ((rng_draw as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low + widening_bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its full-domain distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `[range.start, range.end)`.
    #[inline]
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand::rngs::SmallRng` on 64-bit
    /// platforms. Fast, not cryptographic, statistically solid.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state words. A generator that has been
        /// stepped at least once (or was seeded through
        /// [`SeedableRng::from_seed`]) is never all-zero, so the state can
        /// always be fed back through [`SmallRng::from_state`].
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words, continuing the exact
        /// sequence the words were captured from. All-zero words (only
        /// possible with corrupted input, never with [`SmallRng::state`]
        /// output) get the same degenerate-seed nudge as
        /// [`SeedableRng::from_seed`] rather than producing a stuck
        /// generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            let mut s = s;
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is the one degenerate seed for xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(0u64..17);
            assert!(v < 17);
            let w = r.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
