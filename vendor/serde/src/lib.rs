//! Vendored `serde` stub: marker traits plus re-exported no-op derives.
//!
//! The workspace decorates its data types with `#[derive(Serialize,
//! Deserialize)]` but contains no serialisation consumer (no `serde_json`
//! etc.), so marker traits with blanket implementations are sufficient to
//! compile the unchanged source. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
