//! No-op derive macros backing the vendored `serde` stub.
//!
//! The stub `serde` crate defines `Serialize` / `Deserialize` as marker
//! traits with blanket implementations, so the derives have nothing to
//! generate — they only need to exist so `#[derive(Serialize, Deserialize)]`
//! attributes across the workspace compile unchanged.

use proc_macro::TokenStream;

/// Accepts and discards the annotated item (the blanket impl in `serde`
/// already covers it). Registers the `serde` helper attribute so field
/// annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards the annotated item (the blanket impl in `serde`
/// already covers it). Registers the `serde` helper attribute so field
/// annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
