//! Vendored `criterion` stub: a small wall-clock benchmarking harness that
//! keeps the subset of the criterion API this workspace uses compiling and
//! produces honest (median-of-samples) timing output on `cargo bench`.
//!
//! Implemented surface: [`Criterion::benchmark_group`], `BenchmarkGroup`
//! configuration (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement marker.
    pub struct WallTime;
}

/// Identifier for a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style identifier.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    sample_ns: Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, warming up first, then collecting samples until the
    /// measurement budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Choose an iteration count per sample so one sample is ≥ ~1ms.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let measure_start = Instant::now();
        while self.sample_ns.len() < self.sample_size
            && (self.sample_ns.is_empty() || measure_start.elapsed() < self.measurement)
        {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.sample_ns.push(ns);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.sample_ns.is_empty() {
            return f64::NAN;
        }
        self.sample_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.sample_ns[self.sample_ns.len() / 2]
    }
}

/// A named group of benchmarks with shared configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sampling budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            sample_ns: Vec::new(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median_ns();
        let (value, unit) = if median >= 1e9 {
            (median / 1e9, "s")
        } else if median >= 1e6 {
            (median / 1e6, "ms")
        } else if median >= 1e3 {
            (median / 1e3, "µs")
        } else {
            (median, "ns")
        };
        println!("{}/{}: median {value:.3} {unit}/iter", self.name, label);
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        self.run_one(label, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (output is emitted as benchmarks run).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1_000),
            _criterion: self,
            _measurement: PhantomData,
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
